"""AST-level optimizer for generated model modules (the Clang ``-O2``
analogue of the paper's pipeline).

The emitter favours regularity over speed: every condition is normalized
through ``1 if x else 0``, every signal store is wrapped to its dtype, and
every latch gets an unconditional default — so the generated step function
carries redundant temporaries, foldable wrapper calls and dead stores.
This module rewrites the parsed module between
:func:`~repro.codegen.emitter.generate_model_code` and ``compile()``:

* **constant folding** — arithmetic/compare/boolean operators over
  literals, dtype-wrapper and saturation calls over literals, and the
  collapse of nested boolean normalizations
  (``1 if (1 if x else 0) else 0`` → ``1 if x else 0``);
* **copy & constant propagation** — single-assignment temporaries bound
  to a name or literal are substituted into their uses;
* **dead-signal-store elimination** — pure stores overwritten before any
  read (the emitter's latch defaults) and stores to never-read
  temporaries are dropped;
* **wrapper inlining** — ``_w_int8(x)`` and friends become branch-free
  mask arithmetic (``((x & 255) ^ 128) - 128``), eliminating a Python
  call frame per signal store, with an ``int()`` guard only when the
  operand is not provably integer-valued; ``_safe_div``/``_safe_mod``
  over Name/Constant operands of a known kind likewise become guarded
  branch expressions (C truncation for int pairs, true division with a
  ``0.0`` zero-divisor arm for floats);
* **probe-write coalescing** — runs of consecutive constant probe writes
  merge into one slice store (``cov[4:7] = b'\\x01\\x01\\x01'``) or one
  multi-target assignment;
* **MCDC call prebinding** — statement-level ``_mcdc(g, v, o)`` hook
  calls become ``_mcdc_a{g}((v, o))`` against per-group sinks bound in
  the step prologue; with the stock recorder the sink is the group
  set's bound ``set.add``, so recording a vector costs one C call
  instead of a Python frame per decision (the frame was 25-35% of step
  time on decision-heavy bench models).

A state-localization pass (``self._st_*`` → locals with a load prologue
and store-back epilogue) was prototyped and measured a net **loss** (up
to -24% step throughput): static use counts overestimate dynamic
hotness — conditionally-executed chart code rarely runs, while the
boundary traffic is paid on every call.  It is deliberately absent.

**Instrumentation-preservation invariant.** The optimized module must hit
the byte-identical probe set and record the identical MCDC vectors as the
unoptimized module on every input.  Structurally this is enforced three
ways: probe statements (``cov[...] = 1`` stores and ``_mcdc(...)`` calls)
are never rewritten by any expression pass, definitions feeding a probe
index are never deleted, and :func:`audit_probes` compares the probe
signature (referenced probe-id constants, probe-write slot count, per-
group MCDC call counts) of the module before and after the pipeline,
raising :class:`~repro.errors.CodegenError` on any drift.  The runtime
half of the invariant is pinned by the differential tests
(``tests/test_optimize.py``) against the unoptimized module and the
interpreter.
"""

from __future__ import annotations

import ast
from collections import Counter
from typing import Dict, List, Optional, Set, Tuple

from ..dtypes import dtype_by_name
from ..errors import CodegenError
from ..telemetry.core import get_telemetry

__all__ = [
    "optimize_module",
    "optimize_source",
    "audit_probes",
    "probe_signature",
    "step_arg_kinds",
]

#: calls that are safe to delete with their enclosing dead store
_PURE_CALLS = {
    "_safe_div",
    "_safe_mod",
    "_lookup1d",
    "_lookup2d",
    "int",
    "float",
    "bool",
    "abs",
    "len",
    "min",
    "max",
}
_PURE_CALL_PREFIXES = ("_w_", "_sat_", "_f_")

#: signed/unsigned integer wrapper names → (bits, signed)
_INT_WRAPS = {
    "_w_int8": (8, True),
    "_w_int16": (16, True),
    "_w_int32": (32, True),
    "_w_uint8": (8, False),
    "_w_uint16": (16, False),
    "_w_uint32": (32, False),
}

_BIN_OPS = {
    ast.Add: lambda a, b: a + b,
    ast.Sub: lambda a, b: a - b,
    ast.Mult: lambda a, b: a * b,
    ast.Div: lambda a, b: a / b,
    ast.FloorDiv: lambda a, b: a // b,
    ast.Mod: lambda a, b: a % b,
    ast.LShift: lambda a, b: a << b,
    ast.RShift: lambda a, b: a >> b,
    ast.BitOr: lambda a, b: a | b,
    ast.BitXor: lambda a, b: a ^ b,
    ast.BitAnd: lambda a, b: a & b,
}

_CMP_OPS = {
    ast.Eq: lambda a, b: a == b,
    ast.NotEq: lambda a, b: a != b,
    ast.Lt: lambda a, b: a < b,
    ast.LtE: lambda a, b: a <= b,
    ast.Gt: lambda a, b: a > b,
    ast.GtE: lambda a, b: a >= b,
}


# ---------------------------------------------------------------------- #
# probe statement recognition
# ---------------------------------------------------------------------- #
def _is_cov_subscript(node) -> bool:
    return (
        isinstance(node, ast.Subscript)
        and isinstance(node.value, ast.Name)
        and node.value.id == "cov"
    )


def _is_cov_store(stmt) -> bool:
    """``cov[...] = ...`` (any number of cov-subscript targets)."""
    return (
        isinstance(stmt, ast.Assign)
        and all(_is_cov_subscript(t) for t in stmt.targets)
        and bool(stmt.targets)
    )


#: name prefix of the prebound per-group MCDC sinks (`_mcdc_a3`)
_MCDC_BIND_PREFIX = "_mcdc_a"


def _mcdc_stmt_group(stmt) -> Optional[int]:
    """The MCDC group of a probe statement, or ``None`` if not one.

    Recognizes both the emitter's ``_mcdc(g, v, o)`` form and the
    prebound ``_mcdc_a{g}((v, o))`` form so the probe signature is
    stable across :class:`_McdcPrebinder`.
    """
    if not (
        isinstance(stmt, ast.Expr)
        and isinstance(stmt.value, ast.Call)
        and isinstance(stmt.value.func, ast.Name)
    ):
        return None
    name = stmt.value.func.id
    if name == "_mcdc":
        args = stmt.value.args
        if args and isinstance(args[0], ast.Constant) and isinstance(
            args[0].value, int
        ):
            return args[0].value
        return -1
    if name.startswith(_MCDC_BIND_PREFIX):
        try:
            return int(name[len(_MCDC_BIND_PREFIX):])
        except ValueError:
            return None
    return None


def _is_mcdc_stmt(stmt) -> bool:
    return _mcdc_stmt_group(stmt) is not None


def _is_probe_stmt(stmt) -> bool:
    return _is_cov_store(stmt) or _is_mcdc_stmt(stmt)


def _is_const_cov_store(stmt) -> bool:
    """``cov[<int literal>] = 1`` with a single target."""
    return (
        isinstance(stmt, ast.Assign)
        and len(stmt.targets) == 1
        and _is_cov_subscript(stmt.targets[0])
        and isinstance(stmt.targets[0].slice, ast.Constant)
        and isinstance(stmt.targets[0].slice.value, int)
        and isinstance(stmt.value, ast.Constant)
        and stmt.value.value == 1
    )


# ---------------------------------------------------------------------- #
# probe signature + audit
# ---------------------------------------------------------------------- #
def probe_signature(node) -> Tuple:
    """Static probe signature: (probe-id constants, write slots, MCDC calls).

    Understands the coalesced forms (slice stores, multi-target stores) so
    a signature is stable across :func:`optimize_module`.
    """
    const_ids: Set[int] = set()
    slots = 0
    mcdc: Counter = Counter()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Assign):
            for target in sub.targets:
                if not _is_cov_subscript(target):
                    continue
                index = target.slice
                if (
                    isinstance(index, ast.Slice)
                    and isinstance(index.lower, ast.Constant)
                    and isinstance(index.upper, ast.Constant)
                ):
                    lo, hi = index.lower.value, index.upper.value
                    const_ids.update(range(lo, hi))
                    slots += hi - lo
                else:
                    slots += 1
                    for leaf in ast.walk(index):
                        if isinstance(leaf, ast.Constant) and isinstance(
                            leaf.value, int
                        ):
                            const_ids.add(leaf.value)
        else:
            group = _mcdc_stmt_group(sub)
            if group is not None:
                mcdc[group] += 1
    return (frozenset(const_ids), slots, tuple(sorted(mcdc.items())))


def audit_probes(original, optimized) -> None:
    """Raise :class:`CodegenError` unless both trees expose the same probes."""
    before = probe_signature(original)
    after = probe_signature(optimized)
    if before != after:
        raise CodegenError(
            "optimizer violated the instrumentation-preservation invariant: "
            "probe signature changed from %r to %r" % (before, after)
        )


# ---------------------------------------------------------------------- #
# value-kind inference (integer / 0-1 valued names)
# ---------------------------------------------------------------------- #
def step_arg_kinds(schedule) -> Dict[str, str]:
    """``i_k`` argument name → ``"bool" | "int" | "float"`` for a model."""
    kinds: Dict[str, str] = {}
    for k, field in enumerate(schedule.layout.fields):
        dtype = field.dtype
        if dtype.is_bool:
            kind = "bool"
        elif dtype.is_float:
            kind = "float"
        else:
            kind = "int"
        kinds["i_%d" % (k + 1)] = kind
    return kinds


def _def_key(target) -> Optional[str]:
    """A dataflow key for an assignment target (local name or self attr)."""
    if isinstance(target, ast.Name):
        return target.id
    if (
        isinstance(target, ast.Attribute)
        and isinstance(target.value, ast.Name)
        and target.value.id == "self"
    ):
        return "self." + target.attr
    return None


class _Kinds:
    """Fixpoint sets of provably int-valued / 0-1-valued / float-valued
    quantities (local names and ``self.X`` attributes)."""

    def __init__(
        self, ints: Set[str], bool01: Set[str], floats: Optional[Set[str]] = None
    ):
        self.ints = ints
        self.bool01 = bool01
        self.floats = floats if floats is not None else set()

    def is_int(self, node) -> bool:
        if isinstance(node, ast.Constant):
            return isinstance(node.value, (int, bool)) and not isinstance(
                node.value, float
            )
        if isinstance(node, ast.Name):
            return node.id in self.ints
        if isinstance(node, ast.Attribute):
            key = _def_key(node)
            return key is not None and key in self.ints
        if isinstance(node, ast.IfExp):
            return self.is_int(node.body) and self.is_int(node.orelse)
        if isinstance(node, ast.BoolOp):
            return all(self.is_int(v) for v in node.values)
        if isinstance(node, ast.Compare):
            return True  # bool
        if isinstance(node, ast.BinOp):
            return type(node.op) in (
                ast.Add,
                ast.Sub,
                ast.Mult,
                ast.FloorDiv,
                ast.Mod,
                ast.LShift,
                ast.RShift,
                ast.BitOr,
                ast.BitXor,
                ast.BitAnd,
            ) and self.is_int(node.left) and self.is_int(node.right)
        if isinstance(node, ast.UnaryOp):
            if isinstance(node.op, ast.Not):
                return True
            return isinstance(node.op, (ast.USub, ast.UAdd, ast.Invert)) and self.is_int(
                node.operand
            )
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            name = node.func.id
            if name in _INT_WRAPS or name in ("_w_boolean", "int", "len"):
                return True
            if name.startswith("_sat_"):
                try:
                    return not dtype_by_name(name[len("_sat_"):]).is_float
                except Exception:
                    return False
        return False

    def is_bool01(self, node) -> bool:
        if isinstance(node, ast.Constant):
            return node.value in (0, 1, True, False) and not isinstance(
                node.value, float
            )
        if isinstance(node, ast.Name):
            return node.id in self.bool01
        if isinstance(node, ast.Attribute):
            key = _def_key(node)
            return key is not None and key in self.bool01
        if isinstance(node, ast.IfExp):
            return self.is_bool01(node.body) and self.is_bool01(node.orelse)
        if isinstance(node, ast.BoolOp):
            return all(self.is_bool01(v) for v in node.values)
        if isinstance(node, ast.Compare):
            return True
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.Not):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id == "_w_boolean"
        return False

    def is_float(self, node) -> bool:
        if isinstance(node, ast.Constant):
            return isinstance(node.value, float)
        if isinstance(node, ast.Name):
            return node.id in self.floats
        if isinstance(node, ast.Attribute):
            key = _def_key(node)
            return key is not None and key in self.floats
        if isinstance(node, ast.IfExp):
            return self.is_float(node.body) and self.is_float(node.orelse)
        if isinstance(node, ast.BinOp):
            if isinstance(node.op, ast.Div):
                return True  # numeric `/` is float in Python, int/int too
            return type(node.op) in (
                ast.Add,
                ast.Sub,
                ast.Mult,
                ast.FloorDiv,
                ast.Mod,
            ) and (self.is_float(node.left) or self.is_float(node.right))
        if isinstance(node, ast.UnaryOp):
            return isinstance(node.op, (ast.USub, ast.UAdd)) and self.is_float(
                node.operand
            )
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in (
                "float",
                "_w_double",
                "_w_single",
                "_sat_double",
                "_sat_single",
            )
        return False


def _collect_defs(nodes: List) -> Dict[str, List]:
    """Assignment key → list of RHS expressions, over the given functions."""
    defs: Dict[str, List] = {}
    for root in nodes:
        for sub in ast.walk(root):
            if isinstance(sub, ast.Assign):
                for target in sub.targets:
                    key = _def_key(target)
                    if key is not None:
                        defs.setdefault(key, []).append(sub.value)
            elif isinstance(sub, (ast.AugAssign, ast.For)):
                key = _def_key(sub.target)
                if key is not None:
                    # treated as an opaque redefinition
                    defs.setdefault(key, []).append(None)
    return defs


def _infer_kinds(functions: List, arg_kinds: Dict[str, str]) -> _Kinds:
    """Grow the int/bool01 sets to a fixpoint over all function defs."""
    ints = {name for name, kind in arg_kinds.items() if kind in ("int", "bool")}
    bool01 = {name for name, kind in arg_kinds.items() if kind == "bool"}
    floats = {name for name, kind in arg_kinds.items() if kind == "float"}
    kinds = _Kinds(ints, bool01, floats)
    defs = _collect_defs(functions)
    for _ in range(16):
        changed = False
        for key, values in defs.items():
            if key not in kinds.ints and all(
                v is not None and kinds.is_int(v) for v in values
            ):
                kinds.ints.add(key)
                changed = True
            if key not in kinds.bool01 and all(
                v is not None and kinds.is_bool01(v) for v in values
            ):
                kinds.bool01.add(key)
                changed = True
            if key not in kinds.floats and all(
                v is not None and kinds.is_float(v) for v in values
            ):
                kinds.floats.add(key)
                changed = True
        if not changed:
            break
    return kinds


# ---------------------------------------------------------------------- #
# pass 1: constant folding
# ---------------------------------------------------------------------- #
class _ProbeAwareTransformer(ast.NodeTransformer):
    """Base transformer that never descends into probe statements."""

    def visit_Assign(self, node):
        if _is_cov_store(node):
            return node
        return self.generic_visit(node)

    def visit_Expr(self, node):
        if _is_mcdc_stmt(node):
            return node
        return self.generic_visit(node)


def _fold_wrapper_call(name: str, value):
    """Apply a ``_w_*`` / ``_sat_*`` runtime helper to a literal."""
    from .runtime import _WRAPPERS  # specialized, side-effect free

    if name.startswith("_w_") and name[len("_w_"):] in _WRAPPERS:
        return _WRAPPERS[name[len("_w_"):]](value)
    if name.startswith("_sat_"):
        from ..dtypes import saturate_cast

        return saturate_cast(value, dtype_by_name(name[len("_sat_"):]))
    raise ValueError(name)


class _ConstantFolder(_ProbeAwareTransformer):
    def __init__(self, kinds: _Kinds):
        self.kinds = kinds
        self.changed = 0

    def _const(self, value) -> ast.Constant:
        self.changed += 1
        return ast.Constant(value=value)

    def visit_BinOp(self, node):
        self.generic_visit(node)
        if (
            isinstance(node.left, ast.Constant)
            and isinstance(node.right, ast.Constant)
            and type(node.op) in _BIN_OPS
            and isinstance(node.left.value, (int, float))
            and isinstance(node.right.value, (int, float))
        ):
            try:
                value = _BIN_OPS[type(node.op)](node.left.value, node.right.value)
            except ArithmeticError:
                return node
            if isinstance(value, int) and abs(value) > 1 << 128:
                return node  # avoid literal blowup from shifts
            return self._const(value)
        return node

    def visit_UnaryOp(self, node):
        self.generic_visit(node)
        operand = node.operand
        if isinstance(operand, ast.Constant) and isinstance(
            operand.value, (int, float, bool)
        ):
            if isinstance(node.op, ast.USub):
                return self._const(-operand.value)
            if isinstance(node.op, ast.UAdd):
                return self._const(+operand.value)
            if isinstance(node.op, ast.Not):
                return self._const(not operand.value)
            if isinstance(node.op, ast.Invert) and isinstance(operand.value, int):
                return self._const(~operand.value)
        return node

    def visit_Compare(self, node):
        self.generic_visit(node)
        if (
            len(node.ops) == 1
            and isinstance(node.left, ast.Constant)
            and isinstance(node.comparators[0], ast.Constant)
            and type(node.ops[0]) in _CMP_OPS
        ):
            try:
                return self._const(
                    _CMP_OPS[type(node.ops[0])](
                        node.left.value, node.comparators[0].value
                    )
                )
            except TypeError:
                return node
        return node

    def visit_BoolOp(self, node):
        self.generic_visit(node)
        values = list(node.values)
        is_and = isinstance(node.op, ast.And)
        out = []
        for i, value in enumerate(values):
            if isinstance(value, ast.Constant):
                truthy = bool(value.value)
                if truthy == is_and and i < len(values) - 1:
                    # neutral for this operator and not last: drop it
                    self.changed += 1
                    continue
                if truthy != is_and:
                    # short-circuit: later operands never evaluate
                    out.append(value)
                    self.changed += 1
                    break
            out.append(value)
        else:
            pass
        if len(out) == 1:
            self.changed += 1
            return out[0]
        if out != values:
            node.values = out
        return node

    def visit_IfExp(self, node):
        self.generic_visit(node)
        test = node.test
        if isinstance(test, ast.Constant):
            self.changed += 1
            return node.body if test.value else node.orelse
        if _is_int_const(node.body, 1) and _is_int_const(node.orelse, 0):
            # collapse re-normalization of an already-0/1 value
            if (
                isinstance(test, ast.IfExp)
                and _is_int_const(test.body, 1)
                and _is_int_const(test.orelse, 0)
            ):
                self.changed += 1
                return test
            if isinstance(test, ast.Name) and test.id in self.kinds.bool01:
                self.changed += 1
                return test
        return node

    def visit_Call(self, node):
        self.generic_visit(node)
        if (
            isinstance(node.func, ast.Name)
            and len(node.args) == 1
            and not node.keywords
            and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, (int, float, bool))
            and (
                node.func.id.startswith("_w_") or node.func.id.startswith("_sat_")
            )
        ):
            try:
                value = _fold_wrapper_call(node.func.id, node.args[0].value)
            except Exception:
                return node
            if isinstance(value, (int, float, bool)) and value == value:
                return self._const(value)
        return node


def _is_int_const(node, value) -> bool:
    return (
        isinstance(node, ast.Constant)
        and type(node.value) is int
        and node.value == value
    )


# ---------------------------------------------------------------------- #
# pass 2: copy / constant propagation
# ---------------------------------------------------------------------- #
class _NameUsage:
    """Store/load counts for local names across one function."""

    def __init__(self, func):
        self.stores: Counter = Counter()
        self.loads: Counter = Counter()
        self.probe_loads: Counter = Counter()
        for stmt in ast.walk(func):
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    for leaf in ast.walk(target):
                        if isinstance(leaf, ast.Name) and isinstance(
                            leaf.ctx, ast.Store
                        ):
                            self.stores[leaf.id] += 1
            elif isinstance(stmt, (ast.AugAssign, ast.For)):
                for leaf in ast.walk(stmt.target):
                    if isinstance(leaf, ast.Name):
                        self.stores[leaf.id] += 2  # opaque: never propagate
            elif isinstance(stmt, (ast.comprehension,)):
                for leaf in ast.walk(stmt.target):
                    if isinstance(leaf, ast.Name):
                        self.stores[leaf.id] += 2
        for stmt in ast.walk(func):
            if isinstance(stmt, ast.Name) and isinstance(stmt.ctx, ast.Load):
                self.loads[stmt.id] += 1
        for stmt in _walk_statements(func):
            if _is_probe_stmt(stmt):
                for leaf in ast.walk(stmt):
                    if isinstance(leaf, ast.Name) and isinstance(leaf.ctx, ast.Load):
                        self.probe_loads[leaf.id] += 1


def _walk_statements(node):
    """Every statement node in the tree (not expressions)."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.stmt):
            yield sub


class _CopyPropagator(_ProbeAwareTransformer):
    """Substitute single-assignment aliases and literals into their uses."""

    def __init__(self, func):
        self.usage = _NameUsage(func)
        self.replacements: Dict[str, ast.expr] = {}
        self.changed = 0
        for stmt in _walk_statements(func):
            if (
                isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and not _is_probe_stmt(stmt)
            ):
                name = stmt.targets[0].id
                if self.usage.stores[name] != 1:
                    continue
                value = stmt.value
                if isinstance(value, ast.Constant) and isinstance(
                    value.value, (int, float, bool)
                ):
                    self.replacements[name] = value
                elif (
                    isinstance(value, ast.Name)
                    and isinstance(value.ctx, ast.Load)
                    and self.usage.stores[value.id] <= 1
                ):
                    self.replacements[name] = value
        # resolve alias chains (x -> y, y -> 3  ==>  x -> 3)
        for _ in range(len(self.replacements)):
            advanced = False
            for name, value in list(self.replacements.items()):
                if isinstance(value, ast.Name) and value.id in self.replacements:
                    self.replacements[name] = self.replacements[value.id]
                    advanced = True
            if not advanced:
                break

    def _substitute(self, name: str):
        value = self.replacements[name]
        self.changed += 1
        if isinstance(value, ast.Constant):
            return ast.Constant(value=value.value)
        return ast.Name(id=value.id, ctx=ast.Load())

    def visit_Name(self, node):
        if isinstance(node.ctx, ast.Load) and node.id in self.replacements:
            return self._substitute(node.id)
        return node

    def visit_Assign(self, node):
        if _is_cov_store(node):
            return node
        if (
            len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and node.targets[0].id in self.replacements
            and self.usage.probe_loads[node.targets[0].id] == 0
        ):
            # every non-probe use is substituted and no probe index reads
            # this name: the definition itself is dead
            self.changed += 1
            return None
        return self.generic_visit(node)


# ---------------------------------------------------------------------- #
# pass 3: dead store elimination
# ---------------------------------------------------------------------- #
def _is_pure_expr(node) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call):
            func = sub.func
            if not isinstance(func, ast.Name):
                return False
            if func.id in _PURE_CALLS or func.id.startswith(_PURE_CALL_PREFIXES):
                continue
            return False
        if isinstance(
            sub,
            (
                ast.Lambda,
                ast.Await,
                ast.Yield,
                ast.YieldFrom,
                ast.NamedExpr,
                ast.ListComp,
                ast.SetComp,
                ast.DictComp,
                ast.GeneratorExp,
            ),
        ):
            return False
    return True


def _loads_name(stmt, name: str) -> bool:
    for leaf in ast.walk(stmt):
        if (
            isinstance(leaf, ast.Name)
            and leaf.id == name
            and isinstance(leaf.ctx, ast.Load)
        ):
            return True
    return False


def _stores_name_anywhere(stmt, name: str) -> bool:
    for leaf in ast.walk(stmt):
        if (
            isinstance(leaf, ast.Name)
            and leaf.id == name
            and isinstance(leaf.ctx, ast.Store)
        ):
            return True
    return False


class _DeadStoreEliminator:
    """Drop pure stores that are overwritten before any read, and stores
    to names never read anywhere in the function."""

    def __init__(self, func):
        self.usage = _NameUsage(func)
        self.changed = 0
        self._eliminate_in_lists(func)

    def _eliminate_in_lists(self, node) -> None:
        for field in ("body", "orelse", "finalbody"):
            body = getattr(node, field, None)
            if not isinstance(body, list):
                continue
            kept = []
            for idx, stmt in enumerate(body):
                self._eliminate_in_lists(stmt)
                if self._is_dead(stmt, body, idx):
                    self.changed += 1
                    continue
                kept.append(stmt)
            if kept != body:
                body[:] = kept or [ast.Pass()]

    def _is_dead(self, stmt, body, idx) -> bool:
        if (
            not isinstance(stmt, ast.Assign)
            or len(stmt.targets) != 1
            or not isinstance(stmt.targets[0], ast.Name)
        ):
            return False
        name = stmt.targets[0].id
        if not _is_pure_expr(stmt.value):
            return False
        if self.usage.loads[name] == 0:
            return True  # never read anywhere
        for later in body[idx + 1:]:
            if _loads_name(later, name):
                return False
            if (
                isinstance(later, ast.Assign)
                and len(later.targets) == 1
                and isinstance(later.targets[0], ast.Name)
                and later.targets[0].id == name
            ):
                return True  # unconditionally overwritten before any read
            if _stores_name_anywhere(later, name):
                return False  # conditional overwrite: default still needed
        return False  # may be read after this body (loop back-edges etc.)


# ---------------------------------------------------------------------- #
# pass 4: wrapper inlining
# ---------------------------------------------------------------------- #
def _clone_atom(node):
    """A fresh copy of a Name/Constant operand (safe to duplicate)."""
    if isinstance(node, ast.Constant):
        return ast.Constant(value=node.value)
    return ast.Name(id=node.id, ctx=ast.Load())


def _int_trunc_quotient(a, b):
    """C-truncating integer quotient with a nonzero divisor:
    ``a // b if (a < 0) == (b < 0) else -(-a // b)``."""
    same_sign = ast.Compare(
        left=ast.Compare(
            left=_clone_atom(a), ops=[ast.Lt()], comparators=[ast.Constant(value=0)]
        ),
        ops=[ast.Eq()],
        comparators=[
            ast.Compare(
                left=_clone_atom(b),
                ops=[ast.Lt()],
                comparators=[ast.Constant(value=0)],
            )
        ],
    )
    floor_q = ast.BinOp(
        left=_clone_atom(a), op=ast.FloorDiv(), right=_clone_atom(b)
    )
    trunc_q = ast.UnaryOp(
        op=ast.USub(),
        operand=ast.BinOp(
            left=ast.UnaryOp(op=ast.USub(), operand=_clone_atom(a)),
            op=ast.FloorDiv(),
            right=_clone_atom(b),
        ),
    )
    return ast.IfExp(test=same_sign, body=floor_q, orelse=trunc_q)


class _WrapperInliner(_ProbeAwareTransformer):
    def __init__(self, kinds: _Kinds):
        self.kinds = kinds
        self.changed = 0

    def _inline_safe_div_mod(self, node):
        """``_safe_div``/``_safe_mod`` over Name/Constant operands of a
        statically known kind become branch expressions.

        Only atoms may be duplicated into the guard and both branches
        (pure, cheap re-evaluation).  Both-int operands take the C
        truncation form; a provably float operand takes the true-division
        form, whose zero-divisor arm matches ``safe_div`` exactly
        (``-0.0`` is falsy → ``0.0``; NaN divisors are truthy → ``a / b``).
        Mixed/unknown kinds keep the runtime call.
        """
        name = node.func.id
        a, b = node.args
        if not all(isinstance(x, (ast.Name, ast.Constant)) for x in (a, b)):
            return node
        divisor_nonzero = _clone_atom(b)
        if self.kinds.is_int(a) and self.kinds.is_int(b):
            if name == "_safe_div":
                result = _int_trunc_quotient(a, b)
            else:  # a - trunc_quotient * b
                result = ast.BinOp(
                    left=_clone_atom(a),
                    op=ast.Sub(),
                    right=ast.BinOp(
                        left=_int_trunc_quotient(a, b),
                        op=ast.Mult(),
                        right=_clone_atom(b),
                    ),
                )
            self.changed += 1
            return ast.IfExp(
                test=divisor_nonzero, body=result, orelse=ast.Constant(value=0)
            )
        if name == "_safe_div" and (
            self.kinds.is_float(a) or self.kinds.is_float(b)
        ):
            self.changed += 1
            return ast.IfExp(
                test=divisor_nonzero,
                body=ast.BinOp(
                    left=_clone_atom(a), op=ast.Div(), right=_clone_atom(b)
                ),
                orelse=ast.Constant(value=0.0),
            )
        return node

    def visit_Call(self, node):
        self.generic_visit(node)
        if not isinstance(node.func, ast.Name) or node.keywords:
            return node
        if node.func.id in ("_safe_div", "_safe_mod") and len(node.args) == 2:
            return self._inline_safe_div_mod(node)
        if len(node.args) != 1:
            return node
        name = node.func.id
        arg = node.args[0]
        if name == "_w_boolean":
            self.changed += 1
            if self.kinds.is_bool01(arg):
                return arg
            return ast.IfExp(
                test=arg, body=ast.Constant(value=1), orelse=ast.Constant(value=0)
            )
        if name == "_w_double":
            self.changed += 1
            return ast.Call(
                func=ast.Name(id="float", ctx=ast.Load()), args=[arg], keywords=[]
            )
        if name in _INT_WRAPS:
            bits, signed = _INT_WRAPS[name]
            mask = (1 << bits) - 1
            half = 1 << (bits - 1)
            self.changed += 1
            if not self.kinds.is_int(arg):
                arg = ast.Call(
                    func=ast.Name(id="int", ctx=ast.Load()), args=[arg], keywords=[]
                )
            masked = ast.BinOp(
                left=arg, op=ast.BitAnd(), right=ast.Constant(value=mask)
            )
            if not signed:
                return masked
            return ast.BinOp(
                left=ast.BinOp(
                    left=masked, op=ast.BitXor(), right=ast.Constant(value=half)
                ),
                op=ast.Sub(),
                right=ast.Constant(value=half),
            )
        return node


# ---------------------------------------------------------------------- #
# pass 5: probe-write coalescing
# ---------------------------------------------------------------------- #
class _ProbeCoalescer:
    def __init__(self, func):
        self.changed = 0
        self._coalesce_in_lists(func)

    def _coalesce_in_lists(self, node) -> None:
        for field in ("body", "orelse", "finalbody"):
            body = getattr(node, field, None)
            if not isinstance(body, list):
                continue
            new_body: List = []
            run: List = []
            for stmt in body:
                self._coalesce_in_lists(stmt)
                if _is_const_cov_store(stmt):
                    run.append(stmt)
                else:
                    self._flush(run, new_body)
                    run = []
                    new_body.append(stmt)
            self._flush(run, new_body)
            body[:] = new_body or [ast.Pass()]

    def _flush(self, run: List, out: List) -> None:
        if len(run) < 2:
            out.extend(run)
            return
        indices = [stmt.targets[0].slice.value for stmt in run]
        unique = sorted(set(indices))
        lo, hi = unique[0], unique[-1]
        self.changed += 1
        if len(unique) == len(indices) and hi - lo + 1 == len(indices):
            # contiguous: one slice store at C speed
            out.append(
                ast.Assign(
                    targets=[
                        ast.Subscript(
                            value=ast.Name(id="cov", ctx=ast.Load()),
                            slice=ast.Slice(
                                lower=ast.Constant(value=lo),
                                upper=ast.Constant(value=hi + 1),
                            ),
                            ctx=ast.Store(),
                        )
                    ],
                    value=ast.Constant(value=b"\x01" * len(indices)),
                )
            )
        else:
            out.append(
                ast.Assign(
                    targets=[stmt.targets[0] for stmt in run],
                    value=ast.Constant(value=1),
                )
            )


# ---------------------------------------------------------------------- #
# pass 6: MCDC call prebinding (_mcdc(g, v, o) -> C-level set.add)
# ---------------------------------------------------------------------- #
class _McdcPrebinder:
    """Rewrite ``_mcdc(g, v, o)`` statements into prebound per-group sinks.

    ``recorder.record_mcdc`` is a one-line method, but the Python frame it
    opens per call dominates decision-heavy models (25-35% of step time on
    the bench registry).  Every statement-level ``_mcdc(3, v, o)`` becomes
    ``_mcdc_a3((v, o))``, where the step prologue binds ``_mcdc_a3`` from
    a sink table built once per instance by the ``_mcdc_adders`` runtime
    helper: the group set's bound ``set.add`` (a C call, no frame) when
    the hook is the stock recorder method, or a bridging closure with
    identical semantics for any other hook.

    Runs last so every earlier pass sees the canonical ``_mcdc`` form;
    the probe signature treats both forms as the same group-``g`` probe,
    so the audit pins the rewrite.  A module that already carries the
    prebound form (re-optimization) is left untouched.
    """

    def __init__(self, tree):
        self.changed = 0
        init = step = None
        for func in _module_functions(tree):
            if func.name == "__init__":
                init = func
            elif func.name == "step":
                step = func
        if init is None or step is None:
            return
        if not any(arg.arg == "mcdc" for arg in init.args.args):
            return  # unknown __init__ shape: keep the legacy hook calls
        groups = self._rewrite_calls(step)
        if not groups:
            return
        init.body.append(
            ast.Assign(
                targets=[
                    ast.Attribute(
                        value=ast.Name(id="self", ctx=ast.Load()),
                        attr="_mcdc_adds",
                        ctx=ast.Store(),
                    )
                ],
                value=ast.Call(
                    func=ast.Name(id="_mcdc_adders", ctx=ast.Load()),
                    args=[
                        ast.Name(id="mcdc", ctx=ast.Load()),
                        ast.Constant(value=max(groups) + 1),
                    ],
                    keywords=[],
                ),
            )
        )
        binds: List = [
            ast.Assign(
                targets=[ast.Name(id="_mcdc_adds", ctx=ast.Store())],
                value=ast.Attribute(
                    value=ast.Name(id="self", ctx=ast.Load()),
                    attr="_mcdc_adds",
                    ctx=ast.Load(),
                ),
            )
        ]
        for group in sorted(groups):
            binds.append(
                ast.Assign(
                    targets=[
                        ast.Name(
                            id="%s%d" % (_MCDC_BIND_PREFIX, group), ctx=ast.Store()
                        )
                    ],
                    value=ast.Subscript(
                        value=ast.Name(id="_mcdc_adds", ctx=ast.Load()),
                        slice=ast.Constant(value=group),
                        ctx=ast.Load(),
                    ),
                )
            )
        # splice the binds over (or after) the `_mcdc = self._mcdc_hook`
        # prologue; the hook alias stays only if legacy calls remain
        body = step.body
        hook_alias_live = _loads_name(step, "_mcdc")
        for idx, stmt in enumerate(body):
            if (
                isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and stmt.targets[0].id == "_mcdc"
            ):
                body[idx:idx + 1] = ([stmt] if hook_alias_live else []) + binds
                break
        else:  # handwritten module without the prologue line
            step.body = binds + body

    def _rewrite_calls(self, func) -> Set[int]:
        groups: Set[int] = set()
        for stmt in _walk_statements(func):
            if not (
                isinstance(stmt, ast.Expr)
                and isinstance(stmt.value, ast.Call)
                and isinstance(stmt.value.func, ast.Name)
                and stmt.value.func.id == "_mcdc"
            ):
                continue
            call = stmt.value
            if (
                len(call.args) != 3
                or call.keywords
                or not isinstance(call.args[0], ast.Constant)
                or type(call.args[0].value) is not int
                or call.args[0].value < 0
            ):
                continue  # unexpected shape: leave the legacy call
            group = call.args[0].value
            groups.add(group)
            self.changed += 1
            stmt.value = ast.Call(
                func=ast.Name(
                    id="%s%d" % (_MCDC_BIND_PREFIX, group), ctx=ast.Load()
                ),
                args=[
                    ast.Tuple(elts=[call.args[1], call.args[2]], ctx=ast.Load())
                ],
                keywords=[],
            )
        return groups


# ---------------------------------------------------------------------- #
# driver
# ---------------------------------------------------------------------- #
def _module_functions(tree) -> List:
    """The method bodies of ``GeneratedModel`` (init / step)."""
    functions = []
    for node in tree.body:
        if isinstance(node, ast.ClassDef) and node.name == "GeneratedModel":
            for item in node.body:
                if isinstance(item, ast.FunctionDef):
                    functions.append(item)
    return functions


def optimize_source(
    source: str, arg_kinds: Optional[Dict[str, str]] = None
) -> Tuple[str, Dict[str, int]]:
    """Optimize a generated module; returns ``(new_source, pass_stats)``.

    ``arg_kinds`` maps step argument names to ``"int" | "bool" | "float"``
    (see :func:`step_arg_kinds`); without it the inliner conservatively
    guards every integer wrap with ``int()``.
    """
    tree = ast.parse(source)
    original = ast.parse(source)  # pristine copy for the probe audit
    functions = _module_functions(tree)
    stats = {
        "folded": 0,
        "propagated": 0,
        "dead_stores": 0,
        "inlined_wrappers": 0,
        "coalesced_runs": 0,
        "prebound_mcdc": 0,
    }
    arg_kinds = arg_kinds or {}
    for func in functions:
        for _ in range(5):
            kinds = _infer_kinds([func], arg_kinds)
            folder = _ConstantFolder(kinds)
            folder.visit(func)
            propagator = _CopyPropagator(func)
            propagator.visit(func)
            eliminator = _DeadStoreEliminator(func)
            stats["folded"] += folder.changed
            stats["propagated"] += propagator.changed
            stats["dead_stores"] += eliminator.changed
            if not (folder.changed or propagator.changed or eliminator.changed):
                break
        kinds = _infer_kinds([func], arg_kinds)
        inliner = _WrapperInliner(kinds)
        inliner.visit(func)
        stats["inlined_wrappers"] += inliner.changed
        coalescer = _ProbeCoalescer(func)
        stats["coalesced_runs"] += coalescer.changed
    prebinder = _McdcPrebinder(tree)
    stats["prebound_mcdc"] = prebinder.changed
    ast.fix_missing_locations(tree)
    audit_probes(original, tree)
    optimized = ast.unparse(tree)
    # the unparsed module must itself parse (belt and braces before exec)
    ast.parse(optimized)
    tel = get_telemetry()
    if tel.enabled:
        for name, value in sorted(stats.items()):
            tel.counter("optimizer.%s" % name).inc(value)
        tel.emit("optimizer_stats", stats=dict(stats))
    return optimized, stats


def optimize_module(source: str, arg_kinds: Optional[Dict[str, str]] = None) -> str:
    """Optimize a generated module's source (see :func:`optimize_source`)."""
    return optimize_source(source, arg_kinds)[0]
