"""Persistent content-addressed compile cache for generated model code.

Codegen + ``compile()`` of a large model costs tens of milliseconds; a
parallel campaign pays it once per worker and the CLI pays it once per
invocation.  This module makes every compile after the first a disk read:
entries are keyed by the SHA-256 of the *canonical model form* (a
deterministic textual serialization of the block diagram) together with
the instrumentation level, the optimizer flag and :data:`CODEGEN_VERSION`
— so any change to the model, the requested variant, or the code
generator itself changes the key and invalidates stale artifacts without
any bookkeeping.

Storage layout (default ``.repro_cache/codegen/``, overridable with the
``REPRO_CACHE_DIR`` environment variable; ``REPRO_CACHE=0`` disables the
cache entirely):

* ``<key>.py`` — the generated module source (debuggable with an editor);
* ``<key>.<cache_tag>.bin`` — the marshalled code object, tagged with
  ``sys.implementation.cache_tag`` exactly like CPython's own ``.pyc``
  files so interpreters never load each other's bytecode;
* ``<key>.c`` / ``<key>.<platform>.so`` — the native kernel backend's
  lowered C source and built shared object (see
  :mod:`repro.codegen.kernel`), platform-tagged for the same reason and
  covered by the same quarantine path.

Writes are atomic (temp file + ``os.replace``); a missing or unreadable
entry is a plain miss.  An entry that is *present but corrupted* (bad
marshal payload, non-code object, failed validation — or an injected
``cache_corrupt`` fault) is **quarantined**: both files are moved into a
``quarantine/`` subdirectory so the poisoned entry can never be read
again, a ``fault`` telemetry event records it, and the caller recompiles
from scratch — the retry then re-persists a fresh entry under the same
key.  An in-memory LRU of executed classes sits in front of the disk
tier so repeat compiles inside one process skip even the ``exec``.

Models whose parameters are not canonicalizable (an unknown object type
in ``block.params``) are **uncacheable**: :func:`cache_key` raises
:class:`Uncacheable` and the caller falls back to a plain compile rather
than risking a false cache hit on an ambiguous key.
"""

from __future__ import annotations

import hashlib
import marshal
import os
import sys
import tempfile
from collections import OrderedDict
from typing import Optional, Tuple

from ..dtypes import DType
from ..faults.plan import should_fire as _should_fire

__all__ = [
    "CODEGEN_VERSION",
    "Uncacheable",
    "canonical_model_form",
    "cache_key",
    "CompileCache",
    "default_cache",
]

#: Bump on ANY change to code generation, optimization or the runtime
#: helpers: the constant is folded into every cache key, so stale disk
#: entries from older generators can never be loaded.
CODEGEN_VERSION = "5"

_MEMORY_SLOTS = 32


class Uncacheable(Exception):
    """The model contains parameters with no canonical serialization."""


# ---------------------------------------------------------------------- #
# canonical model form
# ---------------------------------------------------------------------- #
def _canon_value(value, out, depth) -> None:
    from ..model.model import Model  # local: avoid an import cycle

    if value is None or isinstance(value, (bool, int, str, bytes)):
        out.append("%s:%r" % (type(value).__name__, value))
    elif isinstance(value, float):
        # repr round-trips doubles exactly; distinguishes 1.0 from 1
        out.append("float:%r" % value)
    elif isinstance(value, DType):
        out.append("dtype:%s" % value.name)
    elif isinstance(value, (list, tuple)):
        out.append("seq[")
        for item in value:
            _canon_value(item, out, depth)
            out.append(",")
        out.append("]")
    elif isinstance(value, dict):
        out.append("map{")
        try:
            keys = sorted(value)
        except TypeError as exc:
            raise Uncacheable("unsortable dict keys in params") from exc
        for key in keys:
            out.append("%r=" % (key,))
            _canon_value(value[key], out, depth)
            out.append(",")
        out.append("}")
    elif isinstance(value, Model):
        _canon_model(value, out, depth + 1)
    else:
        raise Uncacheable(
            "parameter of type %s has no canonical form" % type(value).__name__
        )


def _canon_model(model, out, depth) -> None:
    if depth > 64:
        raise Uncacheable("model nesting too deep to canonicalize")
    out.append("model(%r){" % model.name)
    for name, block in model.blocks.items():  # insertion order: part of identity
        out.append("block(%r,%r," % (name, block.type_name))
        _canon_value(block.params, out, depth)
        out.append(")")
    for conn in model.connections:
        out.append(
            "wire(%r,%d,%r,%d)" % (conn.src, conn.src_port, conn.dst, conn.dst_port)
        )
    out.append("}")


def canonical_model_form(model) -> str:
    """A deterministic textual form of a model (hierarchy included)."""
    out: list = []
    _canon_model(model, out, 0)
    return "".join(out)


def cache_key(
    model,
    level: str,
    optimize: bool,
    batch: bool = False,
    kernel: bool = False,
) -> str:
    """SHA-256 key for one (model, level, optimize, backend, generator)
    variant — ``batch`` and ``kernel`` select the vectorized and native
    backends respectively.

    Raises :class:`Uncacheable` for models whose parameters cannot be
    serialized deterministically.
    """
    payload = "\x00".join(
        (
            canonical_model_form(model),
            "level=%s" % level,
            "optimize=%d" % bool(optimize),
            "batch=%d" % bool(batch),
            "kernel=%d" % bool(kernel),
            "codegen=%s" % CODEGEN_VERSION,
        )
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------- #
# the cache proper
# ---------------------------------------------------------------------- #
def _env_disabled() -> bool:
    return os.environ.get("REPRO_CACHE", "1") in ("0", "off", "no", "false")


def default_cache_dir() -> str:
    return os.environ.get(
        "REPRO_CACHE_DIR", os.path.join(".repro_cache", "codegen")
    )


class CompileCache:
    """Two-tier (memory LRU + disk) cache of compiled generated modules.

    Disk entries hold ``(source, code object)``; the memory tier holds the
    executed artifact ``(source, value)`` where ``value`` is whatever the
    caller chose to keep (for model modules: the ``GeneratedModel`` class).
    """

    def __init__(self, root: Optional[str] = None, memory_slots: int = _MEMORY_SLOTS):
        self.root = root or default_cache_dir()
        self._memory: "OrderedDict[str, Tuple[str, object]]" = OrderedDict()
        self._memory_slots = memory_slots
        self.hits = 0
        self.misses = 0
        self.disk_hits = 0
        self.disk_misses = 0
        self.quarantined = 0

    def stats(self) -> dict:
        """Hit/miss counters per tier — the telemetry-facing snapshot."""
        return {
            "memory_hits": self.hits,
            "memory_misses": self.misses,
            "disk_hits": self.disk_hits,
            "disk_misses": self.disk_misses,
            "quarantined": self.quarantined,
        }

    # -------------------------- memory tier -------------------------- #
    def get_memory(self, key: str) -> Optional[Tuple[str, object]]:
        entry = self._memory.get(key)
        if entry is not None:
            self._memory.move_to_end(key)
            self.hits += 1
        else:
            self.misses += 1
        return entry

    def put_memory(self, key: str, source: str, value: object) -> None:
        self._memory[key] = (source, value)
        self._memory.move_to_end(key)
        while len(self._memory) > self._memory_slots:
            self._memory.popitem(last=False)

    def clear_memory(self) -> None:
        self._memory.clear()

    # --------------------------- disk tier --------------------------- #
    def _paths(self, key: str) -> Tuple[str, str]:
        tag = sys.implementation.cache_tag or "py"
        return (
            os.path.join(self.root, "%s.py" % key),
            os.path.join(self.root, "%s.%s.bin" % (key, tag)),
        )

    def native_paths(self, key: str) -> Tuple[str, str]:
        """``(<key>.c, <key>.<platform>.so)`` for the kernel backend.

        The ``.c`` keeps the lowered source debuggable next to the built
        artifact; the ``.so`` is tagged with ``sys.platform`` so hosts
        sharing one cache directory never dlopen a foreign binary.
        """
        return (
            os.path.join(self.root, "%s.c" % key),
            os.path.join(self.root, "%s.%s.so" % (key, sys.platform)),
        )

    def get_disk(self, key: str):
        """``(source, code)`` from disk, or ``None`` on miss/corruption.

        A present-but-corrupted entry is quarantined (see
        :meth:`quarantine`) before reporting the miss, so the caller's
        fresh recompile can re-persist a clean entry under the same key.
        """
        src_path, bin_path = self._paths(key)
        try:
            with open(src_path, "r", encoding="utf-8") as fh:
                source = fh.read()
            with open(bin_path, "rb") as fh:
                payload = fh.read()
        except OSError:
            # missing or unreadable: plain miss, nothing to quarantine
            self.disk_misses += 1
            return None
        try:
            if _should_fire("cache_corrupt"):
                raise ValueError("injected cache_corrupt fault")
            code = marshal.loads(payload)
            if not source or not hasattr(code, "co_code"):
                raise ValueError("cache entry failed validation")
        except (ValueError, EOFError, TypeError) as exc:
            self.quarantine(key, exc)
            self.disk_misses += 1
            return None
        self.disk_hits += 1
        return source, code

    def quarantine(self, key: str, error: Exception) -> None:
        """Move a corrupted entry into ``quarantine/`` and record a fault.

        The moved files keep their names, so the poisoned payload stays
        available for post-mortem while the live key becomes a clean miss.
        Quarantine failures (read-only FS) are non-fatal: the entry is
        still reported as a miss and the recompile's ``put_disk``
        overwrites it atomically.
        """
        from ..telemetry.core import get_telemetry  # local: avoid cycle at import

        self.quarantined += 1
        qdir = os.path.join(self.root, "quarantine")
        for path in self._paths(key) + self.native_paths(key):
            try:
                os.makedirs(qdir, exist_ok=True)
                os.replace(path, os.path.join(qdir, os.path.basename(path)))
            except OSError:
                pass
        tel = get_telemetry()
        if tel.enabled:
            tel.emit("fault", kind="cache_corrupt", key=key, error=str(error))

    def put_disk(self, key: str, source: str, code) -> None:
        """Atomically persist one entry; IO errors are non-fatal."""
        src_path, bin_path = self._paths(key)
        try:
            os.makedirs(self.root, exist_ok=True)
            self._atomic_write(src_path, source.encode("utf-8"))
            self._atomic_write(bin_path, marshal.dumps(code))
        except OSError:  # pragma: no cover - read-only FS etc.
            pass  # the cache is an accelerator, never a requirement

    def _atomic_write(self, path: str, payload: bytes) -> None:
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(payload)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise


_DEFAULT: Optional[CompileCache] = None


def default_cache() -> Optional[CompileCache]:
    """The process-wide cache instance, or ``None`` when disabled."""
    global _DEFAULT
    if _env_disabled():
        return None
    if _DEFAULT is None or _DEFAULT.root != default_cache_dir():
        _DEFAULT = CompileCache()
    return _DEFAULT
