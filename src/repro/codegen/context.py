"""Emission context handed to block templates during code synthesis.

One :class:`EmitContext` exists per generated module; the emitter rebinds
its per-block view (path, branch declarations, resolved dtypes) before
calling each block's ``emit_output`` / ``emit_update``.  Blocks use it to:

* write code lines with automatic indentation (``line`` / ``block``);
* allocate fresh local variables (``tmp``) and persistent state
  attributes (``state``);
* emit coverage probe hits subject to the instrumentation level
  (``hit_decision`` / ``hit_condition`` / ``hit_mcdc``) — this is where
  the paper's branch instrumentation modes (a)–(d) become code;
* wrap values to signal dtypes (``wrap``);
* inline child models for the subsystem family (``emit_child_outputs`` /
  ``emit_child_update``).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, List, Optional

from ..dtypes import DType
from ..errors import CodegenError
from ..schedule.branches import Condition, Decision, McdcGroup

__all__ = ["EmitContext", "INSTRUMENT_LEVELS"]

INSTRUMENT_LEVELS = ("model", "code", "none")


class EmitContext:
    """Mutable code-emission state for one generated module."""

    def __init__(self, level: str = "model"):
        if level not in INSTRUMENT_LEVELS:
            raise CodegenError("bad instrumentation level %r" % (level,))
        self.level = level
        self.lines: List[str] = []
        self._indent = 0
        self._tmp_counter = 0
        #: (attribute name, init literal) pairs collected for init()
        self.state_inits: List[tuple] = []

        # per-block view, rebound by the emitter
        self.path: str = ""
        self.block = None
        self.branches = None  # BlockBranches of the current block
        self.in_dtypes: List[Optional[DType]] = []
        self.out_dtypes: List[DType] = []
        #: per-block scratch space surviving from emit_output to
        #: emit_update of the same block (e.g. the output variable a state
        #: block commits in its update phase)
        self._scratch: Dict[str, dict] = {}

        # hierarchy callbacks, installed by the emitter
        self._child_output_emitter = None
        self._child_update_emitter = None
        self._children = None

    # ------------------------------------------------------------------ #
    # writing
    # ------------------------------------------------------------------ #
    def line(self, text: str) -> None:
        """Append one line of code at the current indent."""
        self.lines.append("    " * self._indent + text)

    @contextmanager
    def suite(self, header: str):
        """Emit ``header`` then an indented suite (``with ctx.suite('if x:')``).

        An empty suite gets an automatic ``pass`` so the generated module
        always parses (e.g. an else branch whose probes are disabled at
        the current instrumentation level).
        """
        self.line(header)
        self._indent += 1
        mark = len(self.lines)
        try:
            yield
        finally:
            if len(self.lines) == mark:
                self.line("pass")
            self._indent -= 1

    def tmp(self, hint: str = "t") -> str:
        """A fresh local variable name."""
        self._tmp_counter += 1
        return "_%s%d" % (hint, self._tmp_counter)

    # ------------------------------------------------------------------ #
    # state
    # ------------------------------------------------------------------ #
    def state(self, key: str, init_literal: str) -> str:
        """Register a persistent state attribute; returns ``self._st_*``.

        ``init_literal`` is a Python literal string assigned in the
        generated ``init()`` (re-run before every test input, per the
        paper's "model initialization code").
        """
        attr = "self._st_%s_%s" % (_mangle(self.path), key)
        self.state_inits.append((attr, init_literal))
        return attr

    @property
    def scratch(self) -> dict:
        """Per-block scratch dict shared between output and update phases."""
        return self._scratch.setdefault(self.path, {})

    # ------------------------------------------------------------------ #
    # dtype helpers
    # ------------------------------------------------------------------ #
    def wrap(self, expr: str, dtype: Optional[DType]) -> str:
        """Wrap ``expr`` to ``dtype`` (no-op when dtype is None)."""
        if dtype is None:
            return expr
        from .runtime import wrapper_name

        return "%s(%s)" % (wrapper_name(dtype), expr)

    def out_dtype(self, port: int = 0) -> Optional[DType]:
        return self.out_dtypes[port] if port < len(self.out_dtypes) else None

    def in_dtype(self, port: int) -> Optional[DType]:
        return self.in_dtypes[port] if port < len(self.in_dtypes) else None

    # ------------------------------------------------------------------ #
    # coverage probes
    # ------------------------------------------------------------------ #
    def _decision_enabled(self, decision: Decision) -> bool:
        if self.level == "model":
            return True
        if self.level == "code":
            return getattr(decision, "control_flow", True)
        return False

    def hit_decision(self, decision: Decision, outcome_idx: int) -> None:
        """Emit a probe hit for one decision outcome (a code line)."""
        if self._decision_enabled(decision):
            self.line("cov[%d] = 1" % decision.probe(outcome_idx))

    def decision_hit_expr(self, decision: Decision, index_expr: str) -> None:
        """Probe hit where the outcome index is computed at runtime."""
        if self._decision_enabled(decision):
            self.line("cov[%d + %s] = 1" % (decision.probe_base, index_expr))

    def hit_condition(self, condition: Condition, value_expr: str) -> None:
        """Emit a true/false condition probe hit (model level only)."""
        if self.level == "model":
            self.line(
                "cov[%d if %s else %d] = 1"
                % (condition.probe_true, value_expr, condition.probe_false)
            )

    def hit_mcdc(self, group: McdcGroup, vector_expr: str, outcome_expr: str) -> None:
        """Emit an MCDC truth-vector record (model level only)."""
        if self.level == "model":
            self.line("_mcdc(%d, %s, %s)" % (group.id, vector_expr, outcome_expr))

    # ------------------------------------------------------------------ #
    # hierarchy
    # ------------------------------------------------------------------ #
    def emit_child_outputs(self, child_idx: int, invars: List[str]) -> List[str]:
        """Inline the output phase of child ``child_idx``; returns outvars."""
        if self._child_output_emitter is None:
            raise CodegenError("block %r has no children" % (self.path,))
        return self._child_output_emitter(child_idx, invars)

    def emit_child_update(self, child_idx: int) -> None:
        """Inline the update phase of child ``child_idx``."""
        if self._child_update_emitter is None:
            raise CodegenError("block %r has no children" % (self.path,))
        self._child_update_emitter(child_idx)


def _mangle(path: str) -> str:
    """Turn a hierarchical block path into an identifier fragment."""
    out = []
    for ch in path:
        out.append(ch if ch.isalnum() else "_")
    return "".join(out)
