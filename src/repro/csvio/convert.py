"""Test case ⇄ CSV conversion routines.

CSV shape (Simulink "From Spreadsheet"-style)::

    time,Enable,Power,PanelID
    0,1,700,2
    1,1,650,2

Float fields render with ``repr`` so the byte-exact value round-trips;
integer and boolean fields are plain integers.  A trailing partial tuple
in the binary stream is discarded (the driver's segmentation rule), so
``csv_to_case(case_to_csv(data))`` equals ``data`` truncated to whole
tuples.
"""

from __future__ import annotations

import os
from typing import List

from ..errors import ParseError
from ..fuzzing.testcase import TestCase, TestSuite
from ..parser.inport_info import TupleLayout

__all__ = ["case_to_csv", "csv_to_case", "suite_to_csv_dir", "csv_dir_to_suite"]


def case_to_csv(data: bytes, layout: TupleLayout) -> str:
    """Render one binary test case as CSV text."""
    lines = ["time," + ",".join(field.name for field in layout.fields)]
    for step, values in enumerate(layout.iter_tuples(data)):
        cells = [str(step)]
        for field, value in zip(layout.fields, values):
            cells.append(repr(float(value)) if field.dtype.is_float else str(int(value)))
        lines.append(",".join(cells))
    return "\n".join(lines) + "\n"


def csv_to_case(text: str, layout: TupleLayout) -> bytes:
    """Parse CSV text back into the binary tuple stream."""
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines:
        raise ParseError("empty CSV")
    header = lines[0].split(",")
    expected = ["time"] + [field.name for field in layout.fields]
    if header != expected:
        raise ParseError(
            "CSV header mismatch: got %s, expected %s" % (header, expected)
        )
    rows: List[tuple] = []
    for lineno, line in enumerate(lines[1:], start=2):
        cells = line.split(",")
        if len(cells) != len(expected):
            raise ParseError("CSV line %d has %d cells" % (lineno, len(cells)))
        values = []
        for field, cell in zip(layout.fields, cells[1:]):
            if field.dtype.is_float:
                values.append(float(cell))
            else:
                values.append(int(float(cell)))
        rows.append(tuple(values))
    return layout.pack_stream(rows)


def suite_to_csv_dir(suite: TestSuite, layout: TupleLayout, directory: str) -> List[str]:
    """Write one ``case_NNNN.csv`` per test case; returns the paths."""
    os.makedirs(directory, exist_ok=True)
    paths = []
    for i, case in enumerate(suite):
        path = os.path.join(directory, "case_%04d.csv" % i)
        with open(path, "w") as handle:
            handle.write(case_to_csv(case.data, layout))
        paths.append(path)
    return paths


def csv_dir_to_suite(directory: str, layout: TupleLayout, tool: str = "csv") -> TestSuite:
    """Load every ``*.csv`` in a directory back into a suite."""
    suite = TestSuite(tool=tool)
    for name in sorted(os.listdir(directory)):
        if not name.endswith(".csv"):
            continue
        with open(os.path.join(directory, name)) as handle:
            data = csv_to_case(handle.read(), layout)
        suite.add(TestCase(data, 0.0, tool))
    return suite
