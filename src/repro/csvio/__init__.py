"""Binary test case ⇄ CSV conversion.

The paper implements "a tool to convert binary test case files into csv
supported by Simulink" so every tool's output can be measured by the same
coverage toolbox.  Same role here: a test case's byte stream becomes a
time-indexed CSV of typed inport columns, and back.
"""

from .convert import (
    case_to_csv,
    csv_to_case,
    suite_to_csv_dir,
    csv_dir_to_suite,
)

__all__ = ["case_to_csv", "csv_to_case", "suite_to_csv_dir", "csv_dir_to_suite"]
