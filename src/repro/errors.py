"""Exception hierarchy for the repro library.

Every error raised deliberately by the library derives from
:class:`ReproError`, so callers can catch one type at the API boundary.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ModelError(ReproError):
    """The model structure is invalid (bad wiring, duplicate names, ...)."""


class ScheduleError(ModelError):
    """The model cannot be scheduled (e.g. an algebraic loop)."""


class TypeError_(ModelError):
    """A signal or parameter has an unsupported or inconsistent data type."""


class ParseError(ReproError):
    """A model file (SLX container or XML document) could not be parsed."""


class CodegenError(ReproError):
    """Code synthesis failed for a block or a model."""


class SimulationError(ReproError):
    """The interpreted simulation engine hit an unrecoverable condition."""


class FuzzingError(ReproError):
    """The fuzzing engine was misconfigured or hit an internal fault."""


class SolverError(ReproError):
    """The constraint-directed (SLDV-like) generator failed internally."""


class TelemetryError(ReproError):
    """A campaign trace is unreadable, malformed, or schema-invalid."""


class WatchdogTimeout(ReproError):
    """Generated code exceeded its per-execution step budget.

    Raised from inside generated loop bodies (and the interpreter's loop
    execution) when the armed :class:`repro.faults.watchdog.Watchdog`
    runs out of steps — the campaign-level signal that an input drove a
    MATLAB-function ``while`` loop (or similar) into nontermination.
    """


class FaultPlanError(ReproError):
    """A fault-injection spec (``REPRO_FAULTS``) could not be parsed."""


class CampaignDegradedError(FuzzingError):
    """Every worker of a parallel campaign died beyond its respawn budget."""


class ServiceError(ReproError):
    """The campaign service rejected a request or hit an internal fault."""


class JobNotFound(ServiceError):
    """No job with the requested id exists in the service's store."""


class JobSpecError(ServiceError):
    """A submitted job specification is malformed (the HTTP 400 class)."""
