"""Fluent construction API for models.

The benchmark models and the examples build diagrams through
:class:`ModelBuilder`, which removes the port-index bookkeeping of the raw
:class:`~repro.model.model.Model` API:

>>> from repro.model import ModelBuilder
>>> b = ModelBuilder("demo")
>>> enable = b.inport("Enable", "boolean")
>>> power = b.inport("Power", "int32")
>>> limited = b.block("Saturation", "Limit", lower=0, upper=1000)(power)
>>> gated = b.block("Switch", "Gate", threshold=1)(limited, enable, b.const(0))
>>> b.outport("Out", gated)
>>> model = b.build()

Calling the object returned by :meth:`block` wires its inputs and returns
the block's output signal handle (or a tuple of handles for multi-output
blocks).
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

from ..errors import ModelError
from .block import block_registry
from .model import Model

__all__ = ["ModelBuilder", "Signal"]


class Signal:
    """A handle to one block output port inside a builder."""

    __slots__ = ("builder", "block_name", "port")

    def __init__(self, builder: "ModelBuilder", block_name: str, port: int):
        self.builder = builder
        self.block_name = block_name
        self.port = port

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<Signal %s:%d>" % (self.block_name, self.port)


class _BlockHandle:
    """Callable wrapper returned by :meth:`ModelBuilder.block`."""

    def __init__(self, builder: "ModelBuilder", block_name: str):
        self._builder = builder
        self._block_name = block_name

    def __call__(self, *inputs: Signal) -> Union[Signal, Tuple[Signal, ...]]:
        return self._builder.wire(self._block_name, list(inputs))

    def out(self, port: int) -> Signal:
        """Handle to a specific output port (for multi-output blocks)."""
        return Signal(self._builder, self._block_name, port)


class ModelBuilder:
    """Builds a :class:`Model` incrementally; see module docstring."""

    def __init__(self, name: str):
        self.model = Model(name)
        self._registry = block_registry()
        self._anon_counter = 0
        self._inport_index = 0
        self._outport_index = 0

    # ------------------------------------------------------------------ #
    # block creation
    # ------------------------------------------------------------------ #
    def block(self, type_name: str, name: Optional[str] = None, **params) -> _BlockHandle:
        """Add a block of ``type_name``; returns a callable wiring handle."""
        if type_name not in self._registry:
            raise ModelError("unknown block type: %r" % (type_name,))
        if name is None:
            self._anon_counter += 1
            name = "%s_%d" % (type_name, self._anon_counter)
        block = self._registry[type_name](name, **params)
        self.model.add_block(block)
        return _BlockHandle(self, name)

    def inport(self, name: str, dtype: str = "double", **params) -> Signal:
        """Add a top-level Inport and return its output signal.

        Extra keyword params (e.g. ``range=(low, high)`` for the
        tester-declared value range) pass through to the Inport block.
        """
        self._inport_index += 1
        handle = self.block(
            "Inport", name, index=self._inport_index, dtype=dtype, **params
        )
        return handle.out(0)

    def outport(self, name: str, signal: Signal) -> None:
        """Add an Outport fed by ``signal``."""
        self._outport_index += 1
        handle = self.block("Outport", name, index=self._outport_index)
        handle(signal)

    def const(self, value, dtype: str = None, name: Optional[str] = None) -> Signal:
        """Add a Constant block and return its output signal.

        The data type defaults to ``int32`` for integral Python values and
        ``double`` otherwise.
        """
        if dtype is None:
            dtype = "int32" if isinstance(value, (int, bool)) else "double"
        handle = self.block("Constant", name, value=value, dtype=dtype)
        return handle.out(0)

    def subsystem(self, name: str, child: Model, *inputs: Signal, type_name: str = "Subsystem", **params):
        """Add a subsystem block around an already-built child model."""
        handle = self.block(type_name, name, child=child, **params)
        return handle(*inputs)

    # ------------------------------------------------------------------ #
    # wiring
    # ------------------------------------------------------------------ #
    def wire(self, block_name: str, inputs: List[Signal]) -> Union[Signal, Tuple[Signal, ...]]:
        """Connect ``inputs`` to ``block_name``'s ports in order."""
        block = self.model.blocks[block_name]
        if len(inputs) != block.n_inputs():
            raise ModelError(
                "block %r expects %d inputs, got %d"
                % (block_name, block.n_inputs(), len(inputs))
            )
        for i, sig in enumerate(inputs):
            if sig.builder is not self:
                raise ModelError("signal from a different builder")
            self.model.connect(sig.block_name, sig.port, block_name, i)
        outs = tuple(Signal(self, block_name, i) for i in range(block.n_outputs()))
        if len(outs) == 1:
            return outs[0]
        return outs

    # ------------------------------------------------------------------ #
    # finalization
    # ------------------------------------------------------------------ #
    def build(self, validate: bool = True) -> Model:
        """Return the built model, validated by default."""
        if validate:
            self.model.validate()
        return self.model
