"""Human-readable model descriptions (the CLI's ``show`` command).

Renders a model as an indented tree of blocks with their key parameters,
plus a summary of the branch elements the schedule extracts — the quick
orientation a tester needs before pointing a generator at a model.
"""

from __future__ import annotations

from typing import List

from .model import Model, child_models

__all__ = ["describe_model", "describe_schedule"]

#: parameters worth surfacing inline, per block type
_KEY_PARAMS = {
    "Inport": ("index", "dtype", "range"),
    "Outport": ("index",),
    "Constant": ("value",),
    "Gain": ("gain",),
    "Bias": ("bias",),
    "Sum": ("signs",),
    "Product": ("ops",),
    "Saturation": ("lower", "upper"),
    "DeadZone": ("start", "end"),
    "RateLimiter": ("rising", "falling"),
    "Relay": ("on_point", "off_point"),
    "Switch": ("criterion", "threshold"),
    "MultiportSwitch": ("n_cases",),
    "Logical": ("op", "n_in"),
    "Relational": ("op",),
    "CompareToConstant": ("op", "value"),
    "UnitDelay": ("init",),
    "Delay": ("steps",),
    "DiscreteIntegrator": ("gain", "lower", "upper"),
    "Chart": ("states", "initial"),
    "SwitchCase": ("case_values",),
}


def _param_summary(block) -> str:
    keys = _KEY_PARAMS.get(block.type_name, ())
    parts = []
    for key in keys:
        if key in block.params and block.params[key] is not None:
            value = block.params[key]
            text = getattr(value, "name", None) or repr(value)
            if len(text) > 40:
                text = text[:37] + "..."
            parts.append("%s=%s" % (key, text))
    return "  [%s]" % ", ".join(parts) if parts else ""


def describe_model(model: Model, indent: int = 0) -> str:
    """An indented tree of blocks (children nested under their owner)."""
    pad = "  " * indent
    lines: List[str] = []
    if indent == 0:
        lines.append(
            "%s (%d blocks, %d connections)"
            % (model.name, model.block_count(), len(model.connections))
        )
    for block in model.blocks.values():
        lines.append(
            "%s- %s: %s%s" % (pad, block.name, block.type_name, _param_summary(block))
        )
        for child in child_models(block):
            lines.append("%s    <%s>" % (pad, child.model_name if hasattr(child, "model_name") else child.name))
            lines.append(describe_model(child, indent + 3))
    return "\n".join(lines)


def describe_schedule(schedule) -> str:
    """Branch-element summary of a converted schedule."""
    db = schedule.branch_db
    lines = [
        "model %r" % schedule.model.name,
        "  inport tuple: %d bytes" % schedule.layout.size,
    ]
    for field in schedule.layout.fields:
        extra = "  range=%s" % (field.vrange,) if field.vrange else ""
        lines.append(
            "    %-16s %-8s offset %d%s"
            % (field.name, field.dtype.name, field.offset, extra)
        )
    lines.append(
        "  branch elements: %d decisions (%d outcomes), %d conditions, "
        "%d MCDC groups, %d probes"
        % (
            len(db.decisions),
            db.n_decision_outcomes,
            len(db.conditions),
            len(db.mcdc_groups),
            db.n_probes,
        )
    )
    for decision in db.decisions:
        lines.append(
            "    decision %-34s %s"
            % ("%s:%s" % (decision.block_path, decision.label),
               "/".join(decision.outcomes))
        )
    return "\n".join(lines)
