"""Simulink-like model intermediate representation.

A :class:`~repro.model.model.Model` is a block diagram: named blocks wired
by connections from output ports to input ports, possibly nested through
subsystem blocks.  This package is the substrate that replaces the Simulink
modeling environment in this reproduction (see DESIGN.md).

The public surface:

* :class:`Model`, :class:`Connection` — the diagram container.
* :class:`Block` — base class for all block templates.
* :class:`ModelBuilder` — fluent construction API used by the benchmark
  models and the examples.
* ``repro.model.blocks`` — the block library (50+ templates).
"""

from .block import Block, BlockBranches, block_registry, register_block
from .model import Connection, Model
from .builder import ModelBuilder

# Importing the block library registers every block template.
from . import blocks  # noqa: F401  (import for side effect)

__all__ = [
    "Block",
    "BlockBranches",
    "Connection",
    "Model",
    "ModelBuilder",
    "block_registry",
    "register_block",
]
