"""Time-based waveform sources: Step, Ramp, SineWave.

Discrete-time sources driven by an internal step counter, matching the
Simulink source blocks of the same names (single-rate, sample time 1).
"""

from __future__ import annotations

import math

from ...dtypes import DOUBLE
from ...errors import ModelError
from ..block import Block, register_block

__all__ = ["StepSource", "RampSource", "SineWave", "Increment", "Decrement"]


class _TimeSource(Block):
    """Shared step-counter machinery for time-based sources."""

    n_in = 0
    has_state = True

    def output_dtypes(self, in_dtypes):
        return [DOUBLE]

    def init_state(self):
        return {"k": 0}

    def update(self, ctx, inputs):
        ctx.state["k"] = ctx.state["k"] + 1

    def _emit_counter(self, ctx) -> str:
        attr = ctx.state("k", "0")
        ctx.scratch["attr"] = attr
        return attr

    def emit_update(self, ctx, invars):
        attr = ctx.scratch["attr"]
        ctx.line("%s = %s + 1" % (attr, attr))


@register_block
class StepSource(Block):
    """Outputs ``before`` until step ``at``, then ``after``.

    Params:
        at: step index of the transition (default 1).
        before / after: output levels (defaults 0.0 / 1.0).
    """

    type_name = "Step"
    n_in = 0
    has_state = True

    def validate_params(self) -> None:
        self.params.setdefault("at", 1)
        self.params.setdefault("before", 0.0)
        self.params.setdefault("after", 1.0)
        if self.params["at"] < 0:
            raise ModelError("Step %r needs at >= 0" % (self.name,))

    def output_dtypes(self, in_dtypes):
        return [DOUBLE]

    def init_state(self):
        return {"k": 0}

    def output(self, ctx, inputs):
        before, after = self.params["before"], self.params["after"]
        return [float(after if ctx.state["k"] >= self.params["at"] else before)]

    def update(self, ctx, inputs):
        ctx.state["k"] = ctx.state["k"] + 1

    def emit_output(self, ctx, invars):
        attr = ctx.state("k", "0")
        ctx.scratch["attr"] = attr
        out = ctx.tmp("o")
        ctx.line(
            "%s = float(%r if %s >= %r else %r)"
            % (out, self.params["after"], attr, self.params["at"], self.params["before"])
        )
        return [out]

    def emit_update(self, ctx, invars):
        attr = ctx.scratch["attr"]
        ctx.line("%s = %s + 1" % (attr, attr))


@register_block
class RampSource(_TimeSource):
    """Outputs ``start + slope * k`` for step index k.

    Params:
        slope: per-step increment (default 1.0).
        start: initial value (default 0.0).
    """

    type_name = "Ramp"

    def validate_params(self) -> None:
        self.params.setdefault("slope", 1.0)
        self.params.setdefault("start", 0.0)

    def output(self, ctx, inputs):
        return [float(self.params["start"] + self.params["slope"] * ctx.state["k"])]

    def emit_output(self, ctx, invars):
        attr = self._emit_counter(ctx)
        out = ctx.tmp("o")
        ctx.line(
            "%s = float(%r + %r * %s)"
            % (out, self.params["start"], self.params["slope"], attr)
        )
        return [out]


@register_block
class SineWave(_TimeSource):
    """Outputs ``amplitude * sin(2*pi*k/period) + bias``.

    Params:
        amplitude: default 1.0.
        period: steps per cycle (default 16, >= 2).
        bias: default 0.0.
    """

    type_name = "SineWave"

    def validate_params(self) -> None:
        self.params.setdefault("amplitude", 1.0)
        self.params.setdefault("period", 16)
        self.params.setdefault("bias", 0.0)
        if self.params["period"] < 2:
            raise ModelError("SineWave %r needs period >= 2" % (self.name,))

    def output(self, ctx, inputs):
        k = ctx.state["k"]
        value = self.params["amplitude"] * math.sin(
            2.0 * math.pi * k / self.params["period"]
        ) + self.params["bias"]
        return [float(value)]

    def emit_output(self, ctx, invars):
        attr = self._emit_counter(ctx)
        out = ctx.tmp("o")
        omega = 2.0 * math.pi / self.params["period"]
        ctx.line(
            "%s = float(%r * _f_sin(%r * %s) + %r)"
            % (out, self.params["amplitude"], omega, attr, self.params["bias"])
        )
        return [out]


@register_block
class Increment(Block):
    """y = u + 1, wrapped to the input type."""

    type_name = "Increment"

    def output(self, ctx, inputs):
        from ...dtypes import wrap

        return [wrap(inputs[0] + 1, ctx.out_dtype(0))]

    def emit_output(self, ctx, invars):
        out = ctx.tmp("o")
        ctx.line("%s = %s" % (out, ctx.wrap("(%s + 1)" % invars[0], ctx.out_dtype(0))))
        return [out]


@register_block
class Decrement(Block):
    """y = u - 1, wrapped to the input type."""

    type_name = "Decrement"

    def output(self, ctx, inputs):
        from ...dtypes import wrap

        return [wrap(inputs[0] - 1, ctx.out_dtype(0))]

    def emit_output(self, ctx, invars):
        out = ctx.tmp("o")
        ctx.line("%s = %s" % (out, ctx.wrap("(%s - 1)" % invars[0], ctx.out_dtype(0))))
        return [out]
