"""Discrete-state blocks: delays, memory, integrator, counters.

These blocks give models the *internal state across iterations* that the
paper's Iteration Difference Coverage metric is designed to explore: their
output phase reads state (no direct feedthrough), their update phase
advances it, so reaching deep logic requires long, structured input
sequences — precisely what makes constraint solvers unroll and simulators
crawl.
"""

from __future__ import annotations

from ...dtypes import DOUBLE, dtype_by_name, wrap
from ...errors import ModelError
from ..block import Block, register_block

__all__ = [
    "UnitDelay",
    "Memory",
    "Delay",
    "DiscreteIntegrator",
    "ZeroOrderHold",
    "StepCounter",
    "PulseGenerator",
]


class _SingleStateDelay(Block):
    """Shared implementation of UnitDelay and Memory (1-step delay)."""

    has_state = True

    def validate_params(self) -> None:
        self.params.setdefault("init", 0)
        dtype = self.params.get("dtype")
        if isinstance(dtype, str):
            self.params["dtype"] = dtype_by_name(dtype)

    def direct_feedthrough(self, in_idx: int) -> bool:
        return False

    def needs_input_dtypes(self) -> bool:
        return False

    def output_dtypes(self, in_dtypes):
        if self.params.get("dtype") is not None:
            return [self.params["dtype"]]
        if in_dtypes and in_dtypes[0] is not None:
            return [in_dtypes[0]]
        return [None]

    def init_state(self):
        return {"x": self.params["init"]}

    def output(self, ctx, inputs):
        return [ctx.state["x"]]

    def update(self, ctx, inputs):
        ctx.state["x"] = wrap(inputs[0], ctx.out_dtype(0))

    def emit_output(self, ctx, invars):
        attr = ctx.state("x", repr(self.params["init"]))
        ctx.scratch["attr"] = attr
        out = ctx.tmp("o")
        ctx.line("%s = %s" % (out, attr))
        return [out]

    def emit_update(self, ctx, invars):
        ctx.line(
            "%s = %s" % (ctx.scratch["attr"], ctx.wrap(invars[0], ctx.out_dtype(0)))
        )


@register_block
class UnitDelay(_SingleStateDelay):
    """One-step delay: y[k] = u[k-1].

    Params:
        init: initial output (default 0).
        dtype: optional explicit type (needed inside feedback loops).
    """

    type_name = "UnitDelay"


@register_block
class Memory(_SingleStateDelay):
    """Previous-step memory; semantically a UnitDelay in discrete time."""

    type_name = "Memory"


@register_block
class Delay(Block):
    """N-step delay with an internal shift buffer.

    Params:
        steps: delay length N (>= 1).
        init: initial buffer fill (default 0).
        dtype: optional explicit type.
    """

    type_name = "Delay"
    has_state = True

    def validate_params(self) -> None:
        steps = self.params.get("steps", 1)
        if not isinstance(steps, int) or steps < 1:
            raise ModelError("Delay %r needs steps >= 1" % (self.name,))
        self.params["steps"] = steps
        self.params.setdefault("init", 0)
        dtype = self.params.get("dtype")
        if isinstance(dtype, str):
            self.params["dtype"] = dtype_by_name(dtype)

    def direct_feedthrough(self, in_idx: int) -> bool:
        return False

    def needs_input_dtypes(self) -> bool:
        return False

    def output_dtypes(self, in_dtypes):
        if self.params.get("dtype") is not None:
            return [self.params["dtype"]]
        if in_dtypes and in_dtypes[0] is not None:
            return [in_dtypes[0]]
        return [None]

    def init_state(self):
        return {"buf": [self.params["init"]] * self.params["steps"]}

    def output(self, ctx, inputs):
        return [ctx.state["buf"][0]]

    def update(self, ctx, inputs):
        buf = ctx.state["buf"]
        buf.pop(0)
        buf.append(wrap(inputs[0], ctx.out_dtype(0)))

    def emit_output(self, ctx, invars):
        init = "[%r] * %d" % (self.params["init"], self.params["steps"])
        attr = ctx.state("buf", init)
        ctx.scratch["attr"] = attr
        out = ctx.tmp("o")
        ctx.line("%s = %s[0]" % (out, attr))
        return [out]

    def emit_update(self, ctx, invars):
        attr = ctx.scratch["attr"]
        ctx.line(
            "%s = %s[1:] + [%s]"
            % (attr, attr, ctx.wrap(invars[0], ctx.out_dtype(0)))
        )


@register_block
class DiscreteIntegrator(Block):
    """Forward-Euler discrete integrator with optional output limits.

    y[k] = x[k];  x[k+1] = clamp(x[k] + gain * ts * u[k]).

    Params:
        gain: integration gain (default 1.0).
        ts: sample time (default 1.0).
        init: initial state (default 0.0).
        lower / upper: optional saturation limits (both or neither).
    """

    type_name = "DiscreteIntegrator"
    has_state = True

    def validate_params(self) -> None:
        self.params.setdefault("gain", 1.0)
        self.params.setdefault("ts", 1.0)
        self.params.setdefault("init", 0.0)
        lower = self.params.get("lower")
        upper = self.params.get("upper")
        if (lower is None) != (upper is None):
            raise ModelError(
                "DiscreteIntegrator %r: give both limits or neither" % (self.name,)
            )
        if lower is not None and not lower < upper:
            raise ModelError(
                "DiscreteIntegrator %r needs lower < upper" % (self.name,)
            )

    def direct_feedthrough(self, in_idx: int) -> bool:
        return False

    def needs_input_dtypes(self) -> bool:
        return False

    def output_dtypes(self, in_dtypes):
        return [DOUBLE]

    @property
    def _limited(self) -> bool:
        return self.params.get("lower") is not None

    def declare_branches(self, decl) -> None:
        if self._limited:
            decl.decision("upper", ("limited", "free"), control_flow=False)
            decl.decision("lower", ("limited", "free"), control_flow=False)

    def init_state(self):
        return {"x": float(self.params["init"])}

    def output(self, ctx, inputs):
        return [ctx.state["x"]]

    def update(self, ctx, inputs):
        step = self.params["gain"] * self.params["ts"] * inputs[0]
        value = ctx.state["x"] + step
        if self._limited:
            lower, upper = self.params["lower"], self.params["upper"]
            hi = value >= upper
            lo = value <= lower
            margin_hi = float(value) - float(upper)
            margin_lo = float(lower) - float(value)
            ctx.hit_decision(
                ctx.branches.decisions[0],
                0 if hi else 1,
                margins={0: margin_hi if margin_hi != 0 else 0.5, 1: -margin_hi},
            )
            ctx.hit_decision(
                ctx.branches.decisions[1],
                0 if lo else 1,
                margins={0: margin_lo if margin_lo != 0 else 0.5, 1: -margin_lo},
            )
            value = upper if hi else (lower if lo else value)
        ctx.state["x"] = float(value)

    def emit_output(self, ctx, invars):
        attr = ctx.state("x", repr(float(self.params["init"])))
        ctx.scratch["attr"] = attr
        out = ctx.tmp("o")
        ctx.line("%s = %s" % (out, attr))
        return [out]

    def emit_update(self, ctx, invars):
        attr = ctx.scratch["attr"]
        value = ctx.tmp("x")
        ctx.line(
            "%s = %s + %r * %s"
            % (value, attr, self.params["gain"] * self.params["ts"], invars[0])
        )
        if self._limited:
            lower, upper = self.params["lower"], self.params["upper"]
            ctx.decision_hit_expr(
                ctx.branches.decisions[0], "(0 if %s >= %r else 1)" % (value, upper)
            )
            ctx.decision_hit_expr(
                ctx.branches.decisions[1], "(0 if %s <= %r else 1)" % (value, lower)
            )
            ctx.line(
                "%s = (%r if %s >= %r else (%r if %s <= %r else %s))"
                % (value, upper, value, upper, lower, value, lower, value)
            )
        ctx.line("%s = float(%s)" % (attr, value))


@register_block
class ZeroOrderHold(Block):
    """Identity in single-rate discrete time."""

    type_name = "ZeroOrderHold"

    def output(self, ctx, inputs):
        return [inputs[0]]

    def emit_output(self, ctx, invars):
        return [invars[0]]


@register_block
class StepCounter(Block):
    """Free-running step counter 0..limit, then wraps to 0.

    Params:
        limit: largest value before rollover (default 2**31 - 1).
        dtype: output type (default int32).
    """

    type_name = "StepCounter"
    n_in = 0
    has_state = True

    def validate_params(self) -> None:
        self.params.setdefault("limit", 2**31 - 1)
        dtype = self.params.get("dtype", "int32")
        if isinstance(dtype, str):
            dtype = dtype_by_name(dtype)
        self.params["dtype"] = dtype
        if self.params["limit"] < 1:
            raise ModelError("StepCounter %r needs limit >= 1" % (self.name,))

    def output_dtypes(self, in_dtypes):
        return [self.params["dtype"]]

    def init_state(self):
        return {"n": 0}

    def output(self, ctx, inputs):
        return [ctx.state["n"]]

    def update(self, ctx, inputs):
        nxt = ctx.state["n"] + 1
        ctx.state["n"] = 0 if nxt > self.params["limit"] else nxt

    def emit_output(self, ctx, invars):
        attr = ctx.state("n", "0")
        ctx.scratch["attr"] = attr
        out = ctx.tmp("o")
        ctx.line("%s = %s" % (out, attr))
        return [out]

    def emit_update(self, ctx, invars):
        attr = ctx.scratch["attr"]
        ctx.line(
            "%s = 0 if %s + 1 > %r else %s + 1"
            % (attr, attr, self.params["limit"], attr)
        )


@register_block
class PulseGenerator(Block):
    """Periodic pulse source: ``amplitude`` for ``duty`` steps per period.

    Params:
        period: steps per cycle (>= 2).
        duty: high steps per cycle (1 <= duty < period).
        amplitude: high value (default 1).
    """

    type_name = "PulseGenerator"
    n_in = 0
    has_state = True

    def validate_params(self) -> None:
        period = self.params.get("period", 2)
        duty = self.params.get("duty", 1)
        if period < 2 or not 1 <= duty < period:
            raise ModelError(
                "PulseGenerator %r needs period >= 2, 1 <= duty < period"
                % (self.name,)
            )
        self.params["period"] = period
        self.params["duty"] = duty
        self.params.setdefault("amplitude", 1)

    def output_dtypes(self, in_dtypes):
        from ...dtypes import INT32

        return [INT32 if isinstance(self.params["amplitude"], int) else DOUBLE]

    def init_state(self):
        return {"n": 0}

    def output(self, ctx, inputs):
        high = ctx.state["n"] < self.params["duty"]
        return [self.params["amplitude"] if high else 0]

    def update(self, ctx, inputs):
        ctx.state["n"] = (ctx.state["n"] + 1) % self.params["period"]

    def emit_output(self, ctx, invars):
        attr = ctx.state("n", "0")
        ctx.scratch["attr"] = attr
        out = ctx.tmp("o")
        ctx.line(
            "%s = %r if %s < %r else 0"
            % (out, self.params["amplitude"], attr, self.params["duty"])
        )
        return [out]

    def emit_update(self, ctx, invars):
        attr = ctx.scratch["attr"]
        ctx.line("%s = (%s + 1) %% %r" % (attr, attr, self.params["period"]))
