"""Source blocks: Inport, Constant, Ground.

Inport is the fuzzing interface: its ``dtype`` parameter defines one field
of the input tuple (paper §3.1.1, "Generating data segmentation code").
"""

from __future__ import annotations

from ...dtypes import dtype_by_name, wrap
from ...errors import ModelError
from ..block import Block, register_block

__all__ = ["Inport", "Constant", "Ground"]


@register_block
class Inport(Block):
    """A top-level or subsystem input port.

    Params:
        index: 1-based port index (dense per model level).
        dtype: signal data type name (authoritative; incoming values are
            wrapped to it at the boundary).
        range: optional (low, high) tester-declared value range used by
            the range-constrained mutation mode (paper §5).
    """

    type_name = "Inport"
    n_in = 0
    n_out = 1

    def validate_params(self) -> None:
        index = self.params.get("index")
        if not isinstance(index, int) or index < 1:
            raise ModelError("Inport %r needs a positive 'index'" % (self.name,))
        self.params["dtype"] = _as_dtype(self.params.get("dtype", "double"))
        vrange = self.params.get("range")
        if vrange is not None:
            if len(vrange) != 2 or not vrange[0] < vrange[1]:
                raise ModelError(
                    "Inport %r: range must be (low, high) with low < high"
                    % (self.name,)
                )

    def output_dtypes(self, in_dtypes):
        return [self.params["dtype"]]

    # The execution engines bind Inport values directly from the caller's
    # arguments; these hooks exist only for API completeness.
    def output(self, ctx, inputs):  # pragma: no cover - engines special-case
        raise ModelError("Inport values are bound by the engine")

    def emit_output(self, ctx, invars):  # pragma: no cover - engines special-case
        raise ModelError("Inport values are bound by the emitter")


@register_block
class Constant(Block):
    """A constant-valued source.

    Params:
        value: the constant (int/float/bool).
        dtype: data type name (default ``int32`` for ints, else ``double``).
    """

    type_name = "Constant"
    n_in = 0
    n_out = 1

    def validate_params(self) -> None:
        if "value" not in self.params:
            raise ModelError("Constant %r needs 'value'" % (self.name,))
        default = "int32" if isinstance(self.params["value"], (bool, int)) else "double"
        self.params["dtype"] = _as_dtype(self.params.get("dtype", default))
        self.params["value"] = wrap(self.params["value"], self.params["dtype"])

    def output_dtypes(self, in_dtypes):
        return [self.params["dtype"]]

    def output(self, ctx, inputs):
        return [self.params["value"]]

    def emit_output(self, ctx, invars):
        out = ctx.tmp("k")
        ctx.line("%s = %r" % (out, self.params["value"]))
        return [out]


@register_block
class Ground(Block):
    """A zero source (ties off unused inputs)."""

    type_name = "Ground"
    n_in = 0
    n_out = 1

    def validate_params(self) -> None:
        self.params["dtype"] = _as_dtype(self.params.get("dtype", "double"))

    def output_dtypes(self, in_dtypes):
        return [self.params["dtype"]]

    def output(self, ctx, inputs):
        return [self.params["dtype"].zero()]

    def emit_output(self, ctx, invars):
        out = ctx.tmp("k")
        ctx.line("%s = %r" % (out, self.params["dtype"].zero()))
        return [out]


def _as_dtype(value):
    if isinstance(value, str):
        return dtype_by_name(value)
    return value
