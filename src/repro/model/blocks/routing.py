"""Signal routing blocks: Switch, MultiportSwitch, passthroughs.

Data switch/select blocks are instrumentation mode (b) from the paper:
each data-selection alternative gets a decision-outcome probe.
"""

from __future__ import annotations

from ...dtypes import common_dtype, wrap
from ...errors import ModelError
from ..block import Block, register_block

__all__ = ["Switch", "MultiportSwitch", "SignalPassthrough"]


@register_block
class Switch(Block):
    """Passes input 1 or input 3 depending on the control input 2.

    Params:
        criterion: ``">="`` (default), ``">"`` or ``"~=0"``.
        threshold: numeric threshold for the relational criteria.

    Inputs: (data-if-true, control, data-if-false).
    """

    type_name = "Switch"
    n_in = 3

    def validate_params(self) -> None:
        criterion = self.params.get("criterion", ">=")
        if criterion not in (">=", ">", "~=0"):
            raise ModelError("Switch %r: bad criterion %r" % (self.name, criterion))
        self.params["criterion"] = criterion
        if criterion != "~=0":
            self.params.setdefault("threshold", 0)

    def output_dtypes(self, in_dtypes):
        return [common_dtype(in_dtypes[0], in_dtypes[2])]

    def declare_branches(self, decl) -> None:
        # realized as a conditional move by an optimizing compiler
        decl.decision("switch", ("pass-first", "pass-third"), control_flow=False)

    def _criterion_value(self, control):
        criterion = self.params["criterion"]
        if criterion == "~=0":
            return control != 0, (1.0 if control != 0 else -1.0)
        threshold = self.params["threshold"]
        margin = float(control) - float(threshold)
        if criterion == ">=":
            return control >= threshold, (margin if margin != 0 else 0.5)
        return control > threshold, (margin if margin != 0 else -0.5)

    def output(self, ctx, inputs):
        passed, margin = self._criterion_value(inputs[1])
        ctx.hit_decision(
            ctx.branches.decisions[0],
            0 if passed else 1,
            margins={0: margin, 1: -margin},
        )
        value = inputs[0] if passed else inputs[2]
        return [wrap(value, ctx.out_dtype(0))]

    def emit_output(self, ctx, invars):
        criterion = self.params["criterion"]
        if criterion == "~=0":
            test = "%s != 0" % invars[1]
        else:
            test = "%s %s %r" % (invars[1], criterion, self.params["threshold"])
        flag = ctx.tmp("sw")
        ctx.line("%s = 1 if %s else 0" % (flag, test))
        ctx.decision_hit_expr(ctx.branches.decisions[0], "(0 if %s else 1)" % flag)
        out = ctx.tmp("o")
        expr = "(%s if %s else %s)" % (invars[0], flag, invars[2])
        ctx.line("%s = %s" % (out, ctx.wrap(expr, ctx.out_dtype(0))))
        return [out]


@register_block
class MultiportSwitch(Block):
    """Selects one of N data inputs by a 1-based integer control input.

    Out-of-range selectors clamp to the nearest case (Simulink's
    "clamped" index option).  Inputs: (selector, data1..dataN).

    Params:
        n_cases: number of data inputs.
    """

    type_name = "MultiportSwitch"

    def validate_params(self) -> None:
        n_cases = self.params.get("n_cases", 2)
        if n_cases < 2:
            raise ModelError("MultiportSwitch %r needs n_cases >= 2" % (self.name,))
        self.params["n_cases"] = n_cases
        self.params["n_in"] = 1 + n_cases

    def output_dtypes(self, in_dtypes):
        dtype = in_dtypes[1]
        for other in in_dtypes[2:]:
            dtype = common_dtype(dtype, other)
        return [dtype]

    def declare_branches(self, decl) -> None:
        # realized as a real switch statement in generated C
        decl.decision(
            "case",
            ["case%d" % (i + 1) for i in range(self.params["n_cases"])],
            control_flow=True,
        )

    def output(self, ctx, inputs):
        n_cases = self.params["n_cases"]
        selector = int(inputs[0])
        case = min(max(selector, 1), n_cases) - 1
        margins = {
            i: -abs(float(selector) - (i + 1)) + (0.5 if i == case else 0.0)
            for i in range(n_cases)
        }
        ctx.hit_decision(ctx.branches.decisions[0], case, margins=margins)
        return [wrap(inputs[1 + case], ctx.out_dtype(0))]

    def emit_output(self, ctx, invars):
        n_cases = self.params["n_cases"]
        case = ctx.tmp("sel")
        ctx.line(
            "%s = min(max(int(%s), 1), %d) - 1" % (case, invars[0], n_cases)
        )
        ctx.decision_hit_expr(ctx.branches.decisions[0], case)
        out = ctx.tmp("o")
        values = "(%s)" % ", ".join(invars[1:])
        ctx.line("%s = %s" % (out, ctx.wrap("%s[%s]" % (values, case), ctx.out_dtype(0))))
        return [out]


@register_block
class SignalPassthrough(Block):
    """Identity block (signal specification / rate transition stand-in)."""

    type_name = "SignalPassthrough"

    def output(self, ctx, inputs):
        return [inputs[0]]

    def emit_output(self, ctx, invars):
        return [invars[0]]
