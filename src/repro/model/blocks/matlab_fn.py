"""MATLAB Function block: a typed mini-language function per step.

Instrumentation mode (d): every ``if`` in the body is a decision with a
completed implicit else, every guard atom a condition, every guard an MCDC
group.  ``persistent`` variables give the block cross-iteration state,
like MATLAB's ``persistent`` keyword.
"""

from __future__ import annotations

from ...dtypes import dtype_by_name, wrap
from ...errors import ModelError
from ...lang.analysis import assigned_names, used_names
from ...lang.interp import number_ifs
from ...lang.parser import parse_program
from ..block import Block, register_block
from ._lang_support import (
    CursorSink,
    DeclareSink,
    build_program_info,
    emit_program,
    run_program,
)

__all__ = ["MatlabFunction"]


@register_block
class MatlabFunction(Block):
    """A function block written in the mini action language.

    Params:
        inputs: input variable names, bound to input ports in order.
        outputs: list of (name, dtype_name) return variables.
        body: mini-language source.
        locals: optional dict name -> (dtype_name, init); fresh per call.
        persistent: optional dict name -> (dtype_name, init); kept across
            steps (makes the block stateful).
    """

    type_name = "MatlabFunction"

    def validate_params(self) -> None:
        params = self.params
        inputs = list(params.get("inputs", ()))
        outputs = list(params.get("outputs", ()))
        if not outputs:
            raise ModelError("MatlabFunction %r needs outputs" % (self.name,))
        if "body" not in params:
            raise ModelError("MatlabFunction %r needs 'body'" % (self.name,))

        self._inputs = inputs
        self._outputs = [
            (n, dtype_by_name(d) if isinstance(d, str) else d) for n, d in outputs
        ]
        self._locals = {
            name: (dtype_by_name(d) if isinstance(d, str) else d, init)
            for name, (d, init) in dict(params.get("locals", {})).items()
        }
        self._persistent = {
            name: (dtype_by_name(d) if isinstance(d, str) else d, init)
            for name, (d, init) in dict(params.get("persistent", {})).items()
        }
        self.has_state = bool(self._persistent)

        self._program = parse_program(params["body"])
        number_ifs(self._program)

        known = (
            set(inputs)
            | set(self._locals)
            | set(self._persistent)
            | {n for n, _ in self._outputs}
        )
        assigned = assigned_names(self._program)
        for name in used_names(self._program):
            if name not in known and name not in assigned:
                raise ModelError(
                    "MatlabFunction %r: undefined variable %r" % (self.name, name)
                )

        params["n_in"] = len(inputs)
        params["n_out"] = len(outputs)
        self._wrap_map = {n: dt for n, (dt, _) in self._locals.items()}
        self._wrap_map.update({n: dt for n, (dt, _) in self._persistent.items()})
        self._wrap_map.update({n: dt for n, dt in self._outputs})

    def output_dtypes(self, in_dtypes):
        return [dtype for _, dtype in self._outputs]

    def declare_branches(self, decl) -> None:
        build_program_info(DeclareSink(decl), self._program, "body")

    def init_state(self):
        if not self._persistent:
            return None
        return {
            name: wrap(init, dtype)
            for name, (dtype, init) in self._persistent.items()
        }

    def output(self, ctx, inputs):
        info = build_program_info(CursorSink(ctx.branches), self._program, "body")
        env = {}
        for name, (dtype, init) in self._locals.items():
            env[name] = wrap(init, dtype)
        for name, dtype in self._outputs:
            env.setdefault(name, dtype.zero())
        if self._persistent:
            env.update(ctx.state)
        for name, value in zip(self._inputs, inputs):
            env[name] = value
        run_program(ctx, info, env, wrap_map=self._wrap_map)
        if self._persistent:
            for name in self._persistent:
                ctx.state[name] = env[name]
        return [wrap(env[name], dtype) for name, dtype in self._outputs]

    def emit_output(self, ctx, invars):
        info = build_program_info(CursorSink(ctx.branches), self._program, "body")
        var_map = {}
        for name, var in zip(self._inputs, invars):
            var_map[name] = var
        for name, (dtype, init) in self._locals.items():
            local = ctx.tmp("l")
            ctx.line("%s = %r" % (local, wrap(init, dtype)))
            var_map[name] = local
        for name, (dtype, init) in self._persistent.items():
            var_map[name] = ctx.state("p_%s" % name, repr(wrap(init, dtype)))
        for name, dtype in self._outputs:
            if name not in var_map:
                local = ctx.tmp("y")
                ctx.line("%s = %r" % (local, dtype.zero()))
                var_map[name] = local
        emit_program(ctx, info, var_map, wrap_map=self._wrap_map)
        outs = []
        for name, dtype in self._outputs:
            out = ctx.tmp("o")
            ctx.line("%s = %s" % (out, ctx.wrap(var_map[name], dtype)))
            outs.append(out)
        return outs
