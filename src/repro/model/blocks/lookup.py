"""Lookup table blocks (1-D and 2-D, linear interpolation, clamped ends).

Both execution backends call the same interpolation routines from
:mod:`repro.lang.ops`-style shared helpers (here: local functions exported
through the codegen runtime), so simulation and generated code agree
bit-for-bit.
"""

from __future__ import annotations

from ...dtypes import DOUBLE
from ...errors import ModelError
from ..block import Block, register_block

__all__ = ["Lookup1D", "Lookup2D", "interp1d", "interp2d"]


def interp1d(value, breakpoints, table):
    """Piecewise-linear interpolation with end clamping."""
    value = float(value)
    if value <= breakpoints[0]:
        return float(table[0])
    if value >= breakpoints[-1]:
        return float(table[-1])
    for i in range(len(breakpoints) - 1):
        if value <= breakpoints[i + 1]:
            x0, x1 = breakpoints[i], breakpoints[i + 1]
            y0, y1 = table[i], table[i + 1]
            return float(y0) + (float(y1) - float(y0)) * (value - x0) / (x1 - x0)
    return float(table[-1])  # pragma: no cover - unreachable


def interp2d(u, v, row_bp, col_bp, table):
    """Bilinear interpolation over a row-major 2-D table, clamped."""
    row_cuts = [interp1d(v, col_bp, row) for row in table]
    return interp1d(u, row_bp, row_cuts)


def _check_breakpoints(name, breakpoints):
    if len(breakpoints) < 2:
        raise ModelError("%s: need >= 2 breakpoints" % (name,))
    if any(nxt <= prev for prev, nxt in zip(breakpoints, breakpoints[1:])):
        raise ModelError("%s: breakpoints must be strictly increasing" % (name,))


@register_block
class Lookup1D(Block):
    """1-D lookup table.

    Params:
        breakpoints: strictly increasing abscissae.
        table: ordinates (same length).
    """

    type_name = "Lookup1D"

    def validate_params(self) -> None:
        breakpoints = self.params.get("breakpoints")
        table = self.params.get("table")
        if not breakpoints or not table or len(breakpoints) != len(table):
            raise ModelError(
                "Lookup1D %r needs matching breakpoints/table" % (self.name,)
            )
        _check_breakpoints("Lookup1D %r" % self.name, breakpoints)
        self.params["breakpoints"] = tuple(float(b) for b in breakpoints)
        self.params["table"] = tuple(float(t) for t in table)

    def output_dtypes(self, in_dtypes):
        return [DOUBLE]

    def output(self, ctx, inputs):
        return [interp1d(inputs[0], self.params["breakpoints"], self.params["table"])]

    def emit_output(self, ctx, invars):
        out = ctx.tmp("o")
        ctx.line(
            "%s = _lookup1d(%s, %r, %r)"
            % (out, invars[0], self.params["breakpoints"], self.params["table"])
        )
        return [out]


@register_block
class Lookup2D(Block):
    """2-D lookup table (inputs: row coordinate, column coordinate).

    Params:
        row_breakpoints / col_breakpoints: strictly increasing abscissae.
        table: row-major list of rows.
    """

    type_name = "Lookup2D"
    n_in = 2

    def validate_params(self) -> None:
        rows = self.params.get("row_breakpoints")
        cols = self.params.get("col_breakpoints")
        table = self.params.get("table")
        if not rows or not cols or not table:
            raise ModelError("Lookup2D %r missing parameters" % (self.name,))
        _check_breakpoints("Lookup2D %r" % self.name, rows)
        _check_breakpoints("Lookup2D %r" % self.name, cols)
        if len(table) != len(rows) or any(len(row) != len(cols) for row in table):
            raise ModelError("Lookup2D %r: table shape mismatch" % (self.name,))
        self.params["row_breakpoints"] = tuple(float(b) for b in rows)
        self.params["col_breakpoints"] = tuple(float(b) for b in cols)
        self.params["table"] = tuple(tuple(float(t) for t in row) for row in table)

    def output_dtypes(self, in_dtypes):
        return [DOUBLE]

    def output(self, ctx, inputs):
        return [
            interp2d(
                inputs[0],
                inputs[1],
                self.params["row_breakpoints"],
                self.params["col_breakpoints"],
                self.params["table"],
            )
        ]

    def emit_output(self, ctx, invars):
        out = ctx.tmp("o")
        ctx.line(
            "%s = _lookup2d(%s, %s, %r, %r, %r)"
            % (
                out,
                invars[0],
                invars[1],
                self.params["row_breakpoints"],
                self.params["col_breakpoints"],
                self.params["table"],
            )
        )
        return [out]
