"""Nonlinear blocks: Saturation, DeadZone, RateLimiter, Relay, Quantizer.

These are the paper's mode-(d) examples: conditional judgments *inside*
blocks.  The instrumentation completes every implicit else branch, so both
the "limit active" and the "limit inactive" outcomes carry probes.
"""

from __future__ import annotations

from ...dtypes import wrap
from ...errors import ModelError
from ..block import Block, register_block

__all__ = ["Saturation", "DeadZone", "RateLimiter", "Relay", "Quantizer"]


@register_block
class Saturation(Block):
    """Clamps the input to [lower, upper].

    Two always-evaluated decisions ("upper limited?", "lower limited?"),
    branchless in optimized C (fmin/fmax), hence ``control_flow=False``.
    """

    type_name = "Saturation"

    def validate_params(self) -> None:
        lower = self.params.get("lower")
        upper = self.params.get("upper")
        if lower is None or upper is None or not lower < upper:
            raise ModelError(
                "Saturation %r needs lower < upper" % (self.name,)
            )

    def declare_branches(self, decl) -> None:
        decl.decision("upper", ("limited", "free"), control_flow=False)
        decl.decision("lower", ("limited", "free"), control_flow=False)

    def output(self, ctx, inputs):
        value = inputs[0]
        lower, upper = self.params["lower"], self.params["upper"]
        hi = value >= upper
        lo = value <= lower
        margin_hi = float(value) - float(upper)
        margin_lo = float(lower) - float(value)
        ctx.hit_decision(
            ctx.branches.decisions[0],
            0 if hi else 1,
            margins={0: margin_hi if margin_hi != 0 else 0.5, 1: -margin_hi},
        )
        ctx.hit_decision(
            ctx.branches.decisions[1],
            0 if lo else 1,
            margins={0: margin_lo if margin_lo != 0 else 0.5, 1: -margin_lo},
        )
        result = upper if hi else (lower if lo else value)
        return [wrap(result, ctx.out_dtype(0))]

    def emit_output(self, ctx, invars):
        lower, upper = self.params["lower"], self.params["upper"]
        u = invars[0]
        ctx.decision_hit_expr(
            ctx.branches.decisions[0], "(0 if %s >= %r else 1)" % (u, upper)
        )
        ctx.decision_hit_expr(
            ctx.branches.decisions[1], "(0 if %s <= %r else 1)" % (u, lower)
        )
        out = ctx.tmp("o")
        expr = "(%r if %s >= %r else (%r if %s <= %r else %s))" % (
            upper, u, upper, lower, u, lower, u,
        )
        ctx.line("%s = %s" % (out, ctx.wrap(expr, ctx.out_dtype(0))))
        return [out]


@register_block
class DeadZone(Block):
    """Outputs 0 inside [start, end], offset-shifted input outside.

    Generated C uses a real if/elseif chain, so its decisions are
    control-flow visible; the second check only runs when the first fails.
    """

    type_name = "DeadZone"

    def validate_params(self) -> None:
        start = self.params.get("start")
        end = self.params.get("end")
        if start is None or end is None or not start < end:
            raise ModelError("DeadZone %r needs start < end" % (self.name,))

    def declare_branches(self, decl) -> None:
        decl.decision("above", ("yes", "no"), control_flow=True)
        decl.decision("below", ("yes", "no"), control_flow=True)

    def output(self, ctx, inputs):
        value = inputs[0]
        start, end = self.params["start"], self.params["end"]
        margin_above = float(value) - float(end)
        above = value > end
        ctx.hit_decision(
            ctx.branches.decisions[0],
            0 if above else 1,
            margins={0: margin_above if margin_above != 0 else -0.5, 1: -margin_above},
        )
        if above:
            return [wrap(value - end, ctx.out_dtype(0))]
        below = value < start
        margin_below = float(start) - float(value)
        ctx.hit_decision(
            ctx.branches.decisions[1],
            0 if below else 1,
            margins={0: margin_below if margin_below != 0 else -0.5, 1: -margin_below},
        )
        if below:
            return [wrap(value - start, ctx.out_dtype(0))]
        return [wrap(0, ctx.out_dtype(0))]

    def emit_output(self, ctx, invars):
        start, end = self.params["start"], self.params["end"]
        u = invars[0]
        out = ctx.tmp("o")
        with ctx.suite("if %s > %r:" % (u, end)):
            ctx.hit_decision(ctx.branches.decisions[0], 0)
            ctx.line("%s = %s" % (out, ctx.wrap("(%s - %r)" % (u, end), ctx.out_dtype(0))))
        with ctx.suite("else:"):
            ctx.hit_decision(ctx.branches.decisions[0], 1)
            with ctx.suite("if %s < %r:" % (u, start)):
                ctx.hit_decision(ctx.branches.decisions[1], 0)
                ctx.line(
                    "%s = %s" % (out, ctx.wrap("(%s - %r)" % (u, start), ctx.out_dtype(0)))
                )
            with ctx.suite("else:"):
                ctx.hit_decision(ctx.branches.decisions[1], 1)
                ctx.line("%s = %s" % (out, ctx.wrap("0", ctx.out_dtype(0))))
        return [out]


@register_block
class RateLimiter(Block):
    """Limits the per-step change of the signal.

    Params:
        rising: maximum positive change per step (> 0).
        falling: maximum negative change per step (< 0).
    """

    type_name = "RateLimiter"
    has_state = True

    def validate_params(self) -> None:
        rising = self.params.get("rising")
        falling = self.params.get("falling")
        if rising is None or falling is None or rising <= 0 or falling >= 0:
            raise ModelError(
                "RateLimiter %r needs rising > 0 > falling" % (self.name,)
            )
        self.params.setdefault("init", 0.0)

    def declare_branches(self, decl) -> None:
        decl.decision("rising", ("limited", "free"), control_flow=True)
        decl.decision("falling", ("limited", "free"), control_flow=True)

    def init_state(self):
        return {"prev": self.params["init"]}

    def output(self, ctx, inputs):
        value = inputs[0]
        prev = ctx.state["prev"]
        rising, falling = self.params["rising"], self.params["falling"]
        rate = value - prev
        margin_up = float(rate) - float(rising)
        up = rate > rising
        ctx.hit_decision(
            ctx.branches.decisions[0],
            0 if up else 1,
            margins={0: margin_up if margin_up != 0 else -0.5, 1: -margin_up},
        )
        if up:
            result = prev + rising
        else:
            down = rate < falling
            margin_down = float(falling) - float(rate)
            ctx.hit_decision(
                ctx.branches.decisions[1],
                0 if down else 1,
                margins={0: margin_down if margin_down != 0 else -0.5, 1: -margin_down},
            )
            result = prev + falling if down else value
        result = wrap(result, ctx.out_dtype(0))
        ctx.scratch["pending"] = result
        return [result]

    def update(self, ctx, inputs):
        ctx.state["prev"] = ctx.scratch["pending"]

    def emit_output(self, ctx, invars):
        rising, falling = self.params["rising"], self.params["falling"]
        prev = ctx.state("prev", repr(self.params["init"]))
        rate = ctx.tmp("r")
        out = ctx.tmp("o")
        ctx.line("%s = %s - %s" % (rate, invars[0], prev))
        with ctx.suite("if %s > %r:" % (rate, rising)):
            ctx.hit_decision(ctx.branches.decisions[0], 0)
            ctx.line("%s = %s + %r" % (out, prev, rising))
        with ctx.suite("else:"):
            ctx.hit_decision(ctx.branches.decisions[0], 1)
            with ctx.suite("if %s < %r:" % (rate, falling)):
                ctx.hit_decision(ctx.branches.decisions[1], 0)
                ctx.line("%s = %s + %r" % (out, prev, falling))
            with ctx.suite("else:"):
                ctx.hit_decision(ctx.branches.decisions[1], 1)
                ctx.line("%s = %s" % (out, invars[0]))
        wrapped = ctx.tmp("o")
        ctx.line("%s = %s" % (wrapped, ctx.wrap(out, ctx.out_dtype(0))))
        ctx.scratch["pending_var"] = wrapped
        ctx.scratch["prev_attr"] = prev
        return [wrapped]

    def emit_update(self, ctx, invars):
        ctx.line("%s = %s" % (ctx.scratch["prev_attr"], ctx.scratch["pending_var"]))


@register_block
class Relay(Block):
    """Hysteresis switch: on at ``on_point``, off at ``off_point``.

    Params:
        on_point / off_point: thresholds (off_point < on_point).
        on_value / off_value: emitted values (defaults 1 / 0).
    """

    type_name = "Relay"
    has_state = True

    def validate_params(self) -> None:
        on_point = self.params.get("on_point")
        off_point = self.params.get("off_point")
        if on_point is None or off_point is None or not off_point < on_point:
            raise ModelError(
                "Relay %r needs off_point < on_point" % (self.name,)
            )
        self.params.setdefault("on_value", 1)
        self.params.setdefault("off_value", 0)
        self.params.setdefault("init_on", False)

    def declare_branches(self, decl) -> None:
        decl.decision("turn-on", ("yes", "no"), control_flow=True)
        decl.decision("turn-off", ("yes", "no"), control_flow=True)

    def init_state(self):
        return {"on": 1 if self.params["init_on"] else 0}

    def output(self, ctx, inputs):
        value = inputs[0]
        on = ctx.state["on"]
        if on:
            margin = float(self.params["off_point"]) - float(value)
            turn_off = value <= self.params["off_point"]
            ctx.hit_decision(
                ctx.branches.decisions[1],
                0 if turn_off else 1,
                margins={0: margin if margin != 0 else 0.5, 1: -margin},
            )
            if turn_off:
                on = 0
        else:
            margin = float(value) - float(self.params["on_point"])
            turn_on = value >= self.params["on_point"]
            ctx.hit_decision(
                ctx.branches.decisions[0],
                0 if turn_on else 1,
                margins={0: margin if margin != 0 else 0.5, 1: -margin},
            )
            if turn_on:
                on = 1
        ctx.scratch["pending"] = on
        result = self.params["on_value"] if on else self.params["off_value"]
        return [wrap(result, ctx.out_dtype(0))]

    def update(self, ctx, inputs):
        ctx.state["on"] = ctx.scratch["pending"]

    def emit_output(self, ctx, invars):
        on = ctx.state("on", repr(1 if self.params["init_on"] else 0))
        u = invars[0]
        with ctx.suite("if %s:" % on):
            with ctx.suite("if %s <= %r:" % (u, self.params["off_point"])):
                ctx.hit_decision(ctx.branches.decisions[1], 0)
                ctx.line("%s = 0" % on)
            with ctx.suite("else:"):
                ctx.hit_decision(ctx.branches.decisions[1], 1)
        with ctx.suite("else:"):
            with ctx.suite("if %s >= %r:" % (u, self.params["on_point"])):
                ctx.hit_decision(ctx.branches.decisions[0], 0)
                ctx.line("%s = 1" % on)
            with ctx.suite("else:"):
                ctx.hit_decision(ctx.branches.decisions[0], 1)
        out = ctx.tmp("o")
        expr = "(%r if %s else %r)" % (
            self.params["on_value"], on, self.params["off_value"],
        )
        ctx.line("%s = %s" % (out, ctx.wrap(expr, ctx.out_dtype(0))))
        return [out]


@register_block
class Quantizer(Block):
    """Quantizes to multiples of ``interval``."""

    type_name = "Quantizer"

    def validate_params(self) -> None:
        interval = self.params.get("interval")
        if not interval or interval <= 0:
            raise ModelError("Quantizer %r needs interval > 0" % (self.name,))

    def output(self, ctx, inputs):
        interval = self.params["interval"]
        result = interval * round(float(inputs[0]) / interval)
        return [wrap(result, ctx.out_dtype(0))]

    def emit_output(self, ctx, invars):
        interval = self.params["interval"]
        out = ctx.tmp("o")
        expr = "(%r * _f_round(float(%s) / %r))" % (interval, invars[0], interval)
        ctx.line("%s = %s" % (out, ctx.wrap(expr, ctx.out_dtype(0))))
        return [out]
