"""The block template library (50+ Simulink-like block types).

Importing this package registers every template in the global registry;
``repro.model`` does so on import, so building models never requires
importing block classes directly — use type names with
:class:`~repro.model.builder.ModelBuilder`.
"""

from . import (  # noqa: F401  (imports register the blocks)
    chart,
    conversion,
    discrete,
    logic,
    lookup,
    math_ops,
    matlab_fn,
    nonlinear,
    routing,
    sinks,
    sources,
    subsystem,
    waveforms,
)

from .chart import Chart
from .conversion import DataTypeConversion
from .discrete import (
    Delay,
    DiscreteIntegrator,
    Memory,
    PulseGenerator,
    StepCounter,
    UnitDelay,
    ZeroOrderHold,
)
from .logic import CompareToConstant, CompareToZero, Logical, NotBlock, Relational
from .lookup import Lookup1D, Lookup2D
from .math_ops import (
    Abs,
    Bias,
    Gain,
    MathFunction,
    MinMax,
    Product,
    Rounding,
    Sign,
    Sqrt,
    Sum,
    UnaryMinus,
)
from .matlab_fn import MatlabFunction
from .nonlinear import DeadZone, Quantizer, RateLimiter, Relay, Saturation
from .routing import MultiportSwitch, SignalPassthrough, Switch
from .sinks import Outport, Scope, Terminator
from .sources import Constant, Ground, Inport
from .waveforms import Decrement, Increment, RampSource, SineWave, StepSource
from .subsystem import (
    EnabledSubsystem,
    IfBlock,
    SwitchCase,
    Subsystem,
    TriggeredSubsystem,
)

__all__ = [
    "Abs",
    "Bias",
    "Chart",
    "CompareToConstant",
    "CompareToZero",
    "Constant",
    "Decrement",
    "DataTypeConversion",
    "DeadZone",
    "Delay",
    "DiscreteIntegrator",
    "EnabledSubsystem",
    "Gain",
    "Ground",
    "IfBlock",
    "Increment",
    "Inport",
    "Logical",
    "Lookup1D",
    "Lookup2D",
    "MathFunction",
    "MatlabFunction",
    "Memory",
    "MinMax",
    "MultiportSwitch",
    "NotBlock",
    "Outport",
    "Product",
    "PulseGenerator",
    "Quantizer",
    "RampSource",
    "RateLimiter",
    "Relational",
    "Relay",
    "Rounding",
    "Saturation",
    "Scope",
    "Sign",
    "SineWave",
    "SignalPassthrough",
    "Sqrt",
    "StepCounter",
    "StepSource",
    "Subsystem",
    "Sum",
    "Switch",
    "SwitchCase",
    "Terminator",
    "TriggeredSubsystem",
    "UnaryMinus",
    "UnitDelay",
    "ZeroOrderHold",
]
