"""Stateflow-like chart block: a flat state machine with guarded
transitions and mini-language actions.

This block supplies the "diverse internal states" of the paper's benchmark
models (PV-panel charge states, protocol handshakes, task queues).  Branch
elements (instrumentation mode (d)):

* one N-outcome decision for which state is active each step;
* one fired/skip decision per transition, plus condition probes and an
  MCDC group for each transition guard;
* decisions/conditions for every ``if`` inside entry/during/transition
  actions.

Chart semantics per step: evaluate the active state's outgoing transitions
in priority (declaration) order; the first true guard fires — run its
action, switch state, run the destination's entry action.  If none fires,
run the active state's during action.  All chart data (``locals``) is
persistent and typed.
"""

from __future__ import annotations

from typing import Dict, List

from ...dtypes import dtype_by_name, wrap
from ...errors import ModelError
from ...lang.interp import number_ifs
from ...lang.parser import parse_expr, parse_program
from ..block import Block, register_block
from ._lang_support import (
    CursorSink,
    DeclareSink,
    build_guard_info,
    build_program_info,
    emit_guard,
    emit_program,
    run_guard,
    run_program,
)

__all__ = ["Chart"]


class _TransitionDef:
    """One parsed transition: guard AST + optional action program."""

    def __init__(self, index, src, dst, guard, action):
        self.index = index
        self.src = src
        self.dst = dst
        self.guard = guard
        self.action = action


@register_block
class Chart(Block):
    """Flat Stateflow-style chart.

    Params:
        states: state names.
        initial: initial state name.
        inputs: input variable names (bound to input ports in order).
        outputs: list of (name, dtype_name); each name must be a local.
        locals: dict name -> (dtype_name, init) of persistent chart data.
        transitions: list of dicts with keys src, dst, guard and an
            optional action (mini-language source strings).
        entry: optional dict state -> action source (on state entry).
        during: optional dict state -> action source (steps with no fire).
        exit: optional dict state -> action source (on leaving a state;
            runs before the transition action, Stateflow order).
    """

    type_name = "Chart"
    has_state = True

    def validate_params(self) -> None:
        params = self.params
        states = params.get("states")
        if not states or len(set(states)) != len(states):
            raise ModelError("Chart %r needs distinct states" % (self.name,))
        if params.get("initial") not in states:
            raise ModelError("Chart %r: bad initial state" % (self.name,))
        inputs = list(params.get("inputs", ()))
        locals_ = dict(params.get("locals", {}))
        if set(inputs) & set(locals_):
            raise ModelError(
                "Chart %r: inputs and locals must be disjoint" % (self.name,)
            )
        outputs = list(params.get("outputs", ()))
        if not outputs:
            raise ModelError("Chart %r needs outputs" % (self.name,))
        for out_name, _dtype in outputs:
            if out_name not in locals_:
                raise ModelError(
                    "Chart %r: output %r must be a local" % (self.name, out_name)
                )
        params["n_in"] = len(inputs)
        params["n_out"] = len(outputs)

        self._states: List[str] = list(states)
        self._state_index: Dict[str, int] = {s: i for i, s in enumerate(states)}
        self._inputs = inputs
        self._outputs = [(n, dtype_by_name(d) if isinstance(d, str) else d) for n, d in outputs]
        self._locals = {
            name: (dtype_by_name(d) if isinstance(d, str) else d, init)
            for name, (d, init) in locals_.items()
        }

        self._transitions: List[_TransitionDef] = []
        for i, tr in enumerate(params.get("transitions", ())):
            for key in ("src", "dst"):
                if tr.get(key) not in self._state_index:
                    raise ModelError(
                        "Chart %r: transition %d has bad %s" % (self.name, i, key)
                    )
            guard = parse_expr(tr.get("guard", "1"))
            action = None
            if tr.get("action"):
                action = parse_program(tr["action"])
                number_ifs(action)
            self._transitions.append(
                _TransitionDef(i, tr["src"], tr["dst"], guard, action)
            )

        def parse_actions(key):
            table = {}
            for state, source in (params.get(key) or {}).items():
                if state not in self._state_index:
                    raise ModelError(
                        "Chart %r: %s action for unknown state %r"
                        % (self.name, key, state)
                    )
                program = parse_program(source)
                number_ifs(program)
                table[state] = program
            return table

        self._entry = parse_actions("entry")
        self._during = parse_actions("during")
        self._exit = parse_actions("exit")
        #: wrap map applied to every mini-language assignment
        self._wrap_map = {name: dt for name, (dt, _) in self._locals.items()}

    # ------------------------------------------------------------------ #
    # structure
    # ------------------------------------------------------------------ #
    def output_dtypes(self, in_dtypes):
        return [dtype for _, dtype in self._outputs]

    def _outgoing(self, state: str) -> List[_TransitionDef]:
        return [t for t in self._transitions if t.src == state]

    # ------------------------------------------------------------------ #
    # branch elements — single traversal via the sink pattern
    # ------------------------------------------------------------------ #
    def _build_infos(self, sink):
        infos = {
            # a single-state chart has no state-activity decision
            "state_decision": sink.decision(
                "state", list(self._states), control_flow=True
            )
            if len(self._states) >= 2
            else None,
            "transitions": {},  # transition index -> (decision, guard, action info)
            "entry": {},
            "during": {},
            "exit": {},
        }
        for state in self._states:
            for tr in self._outgoing(state):
                label = "t%d:%s->%s" % (tr.index, tr.src, tr.dst)
                decision = sink.decision(label, ("fired", "skip"), control_flow=True)
                guard_info = build_guard_info(sink, tr.guard, label)
                action_info = None
                if tr.action is not None:
                    action_info = build_program_info(sink, tr.action, label + "/act")
                infos["transitions"][tr.index] = (decision, guard_info, action_info)
        for state in self._states:
            if state in self._entry:
                infos["entry"][state] = build_program_info(
                    sink, self._entry[state], "entry:%s" % state
                )
        for state in self._states:
            if state in self._during:
                infos["during"][state] = build_program_info(
                    sink, self._during[state], "during:%s" % state
                )
        for state in self._states:
            if state in self._exit:
                infos["exit"][state] = build_program_info(
                    sink, self._exit[state], "exit:%s" % state
                )
        return infos

    def declare_branches(self, decl) -> None:
        self._build_infos(DeclareSink(decl))

    # ------------------------------------------------------------------ #
    # interpreted semantics
    # ------------------------------------------------------------------ #
    def init_state(self):
        return {
            "state": self._state_index[self.params["initial"]],
            "locals": {
                name: wrap(init, dtype) for name, (dtype, init) in self._locals.items()
            },
        }

    def output(self, ctx, inputs):
        infos = self._build_infos(CursorSink(ctx.branches))
        env = dict(ctx.state["locals"])
        for name, value in zip(self._inputs, inputs):
            env[name] = value

        active_idx = ctx.state["state"]
        active = self._states[active_idx]
        if infos["state_decision"] is not None:
            ctx.hit_decision(infos["state_decision"], active_idx)

        fired = None
        for tr in self._outgoing(active):
            decision, guard_info, action_info = infos["transitions"][tr.index]
            outcome, margin = run_guard(ctx, guard_info, env)
            ctx.hit_decision(
                decision, 0 if outcome else 1, margins={0: margin, 1: -margin}
            )
            if outcome:
                fired = (tr, action_info)
                break
        if fired is not None:
            tr, action_info = fired
            if active in infos["exit"]:
                run_program(ctx, infos["exit"][active], env, wrap_map=self._wrap_map)
            if action_info is not None:
                run_program(ctx, action_info, env, wrap_map=self._wrap_map)
            ctx.state["state"] = self._state_index[tr.dst]
            if tr.dst in infos["entry"]:
                run_program(ctx, infos["entry"][tr.dst], env, wrap_map=self._wrap_map)
        elif active in infos["during"]:
            run_program(ctx, infos["during"][active], env, wrap_map=self._wrap_map)

        for name in self._locals:
            ctx.state["locals"][name] = env[name]
        return [wrap(env[name], dtype) for name, dtype in self._outputs]

    # ------------------------------------------------------------------ #
    # code template
    # ------------------------------------------------------------------ #
    def emit_output(self, ctx, invars):
        infos = self._build_infos(CursorSink(ctx.branches))
        state_attr = ctx.state(
            "state", repr(self._state_index[self.params["initial"]])
        )
        var_map = {}
        for name, (dtype, init) in self._locals.items():
            var_map[name] = ctx.state("loc_%s" % name, repr(wrap(init, dtype)))
        for name, var in zip(self._inputs, invars):
            var_map[name] = var

        if infos["state_decision"] is not None:
            ctx.decision_hit_expr(infos["state_decision"], state_attr)

        def emit_transition_chain(transitions, state):
            if not transitions:
                if state in infos["during"]:
                    emit_program(
                        ctx, infos["during"][state], var_map, wrap_map=self._wrap_map
                    )
                return
            tr = transitions[0]
            decision, guard_info, action_info = infos["transitions"][tr.index]
            guard_var = emit_guard(ctx, guard_info, var_map)
            with ctx.suite("if %s:" % guard_var):
                ctx.hit_decision(decision, 0)
                if state in infos["exit"]:
                    emit_program(
                        ctx, infos["exit"][state], var_map, wrap_map=self._wrap_map
                    )
                if action_info is not None:
                    emit_program(ctx, action_info, var_map, wrap_map=self._wrap_map)
                ctx.line("%s = %d" % (state_attr, self._state_index[tr.dst]))
                if tr.dst in infos["entry"]:
                    emit_program(
                        ctx, infos["entry"][tr.dst], var_map, wrap_map=self._wrap_map
                    )
            with ctx.suite("else:"):
                ctx.hit_decision(decision, 1)
                emit_transition_chain(transitions[1:], state)

        for idx, state in enumerate(self._states):
            header = ("if" if idx == 0 else "elif") + " %s == %d:" % (state_attr, idx)
            with ctx.suite(header):
                emit_transition_chain(self._outgoing(state), state)

        outs = []
        for name, dtype in self._outputs:
            out = ctx.tmp("o")
            ctx.line("%s = %s" % (out, ctx.wrap(var_map[name], dtype)))
            outs.append(out)
        return outs
