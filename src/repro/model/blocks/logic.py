"""Boolean and relational blocks.

The Logical block is instrumentation mode (a) from the paper: every input
gets an if/else-style true/false condition probe, and the block's inputs
form one MCDC group whose outcome is the block output.  A C compiler turns
these dataflow boolean ops into branchless bitwise code — which is exactly
why code-level ("Fuzz Only") instrumentation misses them.
"""

from __future__ import annotations

from ...dtypes import BOOLEAN
from ...errors import ModelError
from ..block import Block, register_block
from ._lang_support import truth_vector

__all__ = ["Logical", "Relational", "CompareToConstant", "CompareToZero", "NotBlock"]

_LOGIC_OPS = ("AND", "OR", "XOR", "NAND", "NOR")
_REL_OPS = ("<", "<=", ">", ">=", "==", "!=")


def _apply_logic(op: str, truths) -> int:
    if op == "AND":
        return 1 if all(truths) else 0
    if op == "OR":
        return 1 if any(truths) else 0
    if op == "XOR":
        return sum(truths) & 1
    if op == "NAND":
        return 0 if all(truths) else 1
    return 0 if any(truths) else 1  # NOR


@register_block
class Logical(Block):
    """N-ary logic operator (AND/OR/XOR/NAND/NOR).

    Params:
        op: operator name.
        n_in: number of inputs (default 2).
    """

    type_name = "Logical"

    def validate_params(self) -> None:
        op = self.params.get("op", "AND")
        if op not in _LOGIC_OPS:
            raise ModelError("Logical %r: bad op %r" % (self.name, op))
        self.params["op"] = op
        self.params.setdefault("n_in", 2)
        if self.params["n_in"] < 2:
            raise ModelError("Logical %r needs n_in >= 2" % (self.name,))

    def output_dtypes(self, in_dtypes):
        return [BOOLEAN]

    def declare_branches(self, decl) -> None:
        conditions = [
            decl.condition("in%d" % (i + 1)) for i in range(self.params["n_in"])
        ]
        decl.mcdc_group(self.params["op"], conditions)

    def output(self, ctx, inputs):
        truths = [1 if v else 0 for v in inputs]
        for cond, truth in zip(ctx.branches.conditions, truths):
            ctx.hit_condition(cond, truth)
        result = _apply_logic(self.params["op"], truths)
        ctx.hit_mcdc(ctx.branches.mcdc_groups[0], truth_vector(truths), result)
        return [result]

    def emit_output(self, ctx, invars):
        cond_vars = []
        for i, var in enumerate(invars):
            cv = ctx.tmp("c")
            ctx.line("%s = 1 if %s else 0" % (cv, var))
            ctx.hit_condition(ctx.branches.conditions[i], cv)
            cond_vars.append(cv)
        out = ctx.tmp("o")
        op = self.params["op"]
        if op == "AND":
            expr = "1 if (%s) else 0" % " and ".join(cond_vars)
        elif op == "OR":
            expr = "1 if (%s) else 0" % " or ".join(cond_vars)
        elif op == "XOR":
            expr = "(%s) & 1" % " + ".join(cond_vars)
        elif op == "NAND":
            expr = "0 if (%s) else 1" % " and ".join(cond_vars)
        else:  # NOR
            expr = "0 if (%s) else 1" % " or ".join(cond_vars)
        ctx.line("%s = %s" % (out, expr))
        vec = " | ".join(
            "(%s << %d)" % (cv, i) if i else cv for i, cv in enumerate(cond_vars)
        )
        ctx.hit_mcdc(ctx.branches.mcdc_groups[0], "(%s)" % vec, out)
        return [out]


@register_block
class NotBlock(Block):
    """Logical NOT; a single condition probe pair on its input."""

    type_name = "Not"
    n_in = 1

    def output_dtypes(self, in_dtypes):
        return [BOOLEAN]

    def declare_branches(self, decl) -> None:
        decl.condition("in1")

    def output(self, ctx, inputs):
        truth = 1 if inputs[0] else 0
        ctx.hit_condition(ctx.branches.conditions[0], truth)
        return [0 if truth else 1]

    def emit_output(self, ctx, invars):
        cv = ctx.tmp("c")
        ctx.line("%s = 1 if %s else 0" % (cv, invars[0]))
        ctx.hit_condition(ctx.branches.conditions[0], cv)
        out = ctx.tmp("o")
        ctx.line("%s = 0 if %s else 1" % (out, cv))
        return [out]


@register_block
class Relational(Block):
    """Binary comparison; boolean output, no branch elements of its own.

    (Its result typically becomes a *condition* of a downstream Logical
    block or Switch criterion, where the probes live.)
    """

    type_name = "Relational"
    n_in = 2

    def validate_params(self) -> None:
        op = self.params.get("op", "<")
        if op not in _REL_OPS:
            raise ModelError("Relational %r: bad op %r" % (self.name, op))
        self.params["op"] = op

    def output_dtypes(self, in_dtypes):
        return [BOOLEAN]

    def output(self, ctx, inputs):
        left, right = inputs
        op = self.params["op"]
        result = {
            "<": left < right,
            "<=": left <= right,
            ">": left > right,
            ">=": left >= right,
            "==": left == right,
            "!=": left != right,
        }[op]
        return [1 if result else 0]

    def emit_output(self, ctx, invars):
        out = ctx.tmp("o")
        ctx.line(
            "%s = 1 if %s %s %s else 0"
            % (out, invars[0], self.params["op"], invars[1])
        )
        return [out]


@register_block
class CompareToConstant(Block):
    """Comparison against a constant parameter; boolean output.

    Params:
        op: relational operator.
        value: the constant to compare against.
    """

    type_name = "CompareToConstant"
    n_in = 1

    def validate_params(self) -> None:
        op = self.params.get("op", "==")
        if op not in _REL_OPS:
            raise ModelError("CompareToConstant %r: bad op %r" % (self.name, op))
        if "value" not in self.params:
            raise ModelError("CompareToConstant %r needs 'value'" % (self.name,))
        self.params["op"] = op

    def output_dtypes(self, in_dtypes):
        return [BOOLEAN]

    def output(self, ctx, inputs):
        left = inputs[0]
        right = self.params["value"]
        op = self.params["op"]
        result = {
            "<": left < right,
            "<=": left <= right,
            ">": left > right,
            ">=": left >= right,
            "==": left == right,
            "!=": left != right,
        }[op]
        return [1 if result else 0]

    def emit_output(self, ctx, invars):
        out = ctx.tmp("o")
        ctx.line(
            "%s = 1 if %s %s %r else 0"
            % (out, invars[0], self.params["op"], self.params["value"])
        )
        return [out]


@register_block
class CompareToZero(Block):
    """Comparison against zero; boolean output."""

    type_name = "CompareToZero"
    n_in = 1

    def validate_params(self) -> None:
        op = self.params.get("op", "~=")
        if op not in _REL_OPS + ("~=",):
            raise ModelError("CompareToZero %r: bad op %r" % (self.name, op))
        self.params["op"] = "!=" if op == "~=" else op

    def output_dtypes(self, in_dtypes):
        return [BOOLEAN]

    def output(self, ctx, inputs):
        left = inputs[0]
        op = self.params["op"]
        result = {
            "<": left < 0,
            "<=": left <= 0,
            ">": left > 0,
            ">=": left >= 0,
            "==": left == 0,
            "!=": left != 0,
        }[op]
        return [1 if result else 0]

    def emit_output(self, ctx, invars):
        out = ctx.tmp("o")
        ctx.line("%s = 1 if %s %s 0 else 0" % (out, invars[0], self.params["op"]))
        return [out]
