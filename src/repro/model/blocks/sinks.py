"""Sink blocks: Outport, Terminator, Scope.

Outport values become the model step function's return tuple — the fuzz
driver's "Model Output Variable" slots in the paper's Figure 3.
"""

from __future__ import annotations

from ...errors import ModelError
from ..block import Block, register_block

__all__ = ["Outport", "Terminator", "Scope"]


@register_block
class Outport(Block):
    """A top-level or subsystem output port.

    Params:
        index: 1-based port index (dense per model level).
    """

    type_name = "Outport"
    n_in = 1
    n_out = 0

    def validate_params(self) -> None:
        index = self.params.get("index")
        if not isinstance(index, int) or index < 1:
            raise ModelError("Outport %r needs a positive 'index'" % (self.name,))

    def output(self, ctx, inputs):  # engines read the driving signal directly
        return []

    def emit_output(self, ctx, invars):
        return []


@register_block
class Terminator(Block):
    """Discards its input (keeps diagrams fully connected)."""

    type_name = "Terminator"
    n_in = 1
    n_out = 0

    def output(self, ctx, inputs):
        return []

    def emit_output(self, ctx, invars):
        return []


@register_block
class Scope(Block):
    """A display sink; semantically identical to Terminator here."""

    type_name = "Scope"
    n_in = 1
    n_out = 0

    def output(self, ctx, inputs):
        return []

    def emit_output(self, ctx, invars):
        return []
