"""Type conversion blocks."""

from __future__ import annotations

from ...dtypes import dtype_by_name, saturate_cast, wrap
from ...errors import ModelError
from ..block import Block, register_block

__all__ = ["DataTypeConversion"]


@register_block
class DataTypeConversion(Block):
    """Casts the input to ``dtype``.

    Params:
        dtype: target type name.
        saturate: True for saturating integer conversion (Simulink's
            "saturate on integer overflow"), False for C wrapping.
    """

    type_name = "DataTypeConversion"

    def validate_params(self) -> None:
        dtype = self.params.get("dtype")
        if dtype is None:
            raise ModelError(
                "DataTypeConversion %r needs 'dtype'" % (self.name,)
            )
        if isinstance(dtype, str):
            self.params["dtype"] = dtype_by_name(dtype)
        self.params.setdefault("saturate", False)

    def output_dtypes(self, in_dtypes):
        return [self.params["dtype"]]

    def output(self, ctx, inputs):
        if self.params["saturate"]:
            return [saturate_cast(inputs[0], self.params["dtype"])]
        return [wrap(inputs[0], self.params["dtype"])]

    def emit_output(self, ctx, invars):
        from ...codegen.runtime import sat_name, wrapper_name

        dtype = self.params["dtype"]
        helper = sat_name(dtype) if self.params["saturate"] else wrapper_name(dtype)
        out = ctx.tmp("o")
        ctx.line("%s = %s(%s)" % (out, helper, invars[0]))
        return [out]
