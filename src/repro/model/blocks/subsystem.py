"""Hierarchy blocks: Subsystem, EnabledSubsystem, TriggeredSubsystem,
If and SwitchCase action groups.

The If / SwitchCase blocks bundle the Simulink pattern "If block + If
Action Subsystems + Merge" into a single block whose children are complete
child models: the block evaluates its selection logic (a mode-(c) branch
decision), executes exactly one child, and *holds* its outputs (Merge
semantics) when no branch runs.  Child state only advances on the steps
the child executes, exactly like conditionally-executed subsystems in
Simulink.
"""

from __future__ import annotations

from typing import List

from ...dtypes import wrap
from ...errors import ModelError
from ..block import Block, register_block
from ._lang_support import truth_vector

__all__ = [
    "Subsystem",
    "EnabledSubsystem",
    "TriggeredSubsystem",
    "IfBlock",
    "SwitchCase",
]


def _model_ports(child):
    return len(child.inports()), len(child.outports())


class _HierBlock(Block):
    """Shared helpers for blocks owning child models."""

    def _hold_inits(self) -> List[object]:
        init = self.params.get("init_outputs", 0)
        n_out = self.n_outputs()
        if isinstance(init, (list, tuple)):
            if len(init) != n_out:
                raise ModelError(
                    "%s %r: init_outputs length mismatch" % (self.type_name, self.name)
                )
            return list(init)
        return [init] * n_out


@register_block
class Subsystem(_HierBlock):
    """A virtual subsystem: pure grouping, always executes.

    Params:
        child: the child :class:`~repro.model.model.Model`.
    """

    type_name = "Subsystem"

    def validate_params(self) -> None:
        child = self.params.get("child")
        if child is None:
            raise ModelError("Subsystem %r needs 'child'" % (self.name,))

    def n_inputs(self) -> int:
        return _model_ports(self.params["child"])[0]

    def n_outputs(self) -> int:
        return _model_ports(self.params["child"])[1]

    def hierarchical_feedthrough(self, child_schedules, in_idx: int) -> bool:
        return bool(child_schedules[0].ft_matrix.get(in_idx + 1))

    def output(self, ctx, inputs):
        return ctx.exec_child_outputs(0, inputs)

    def update(self, ctx, inputs):
        ctx.exec_child_update(0)

    def emit_output(self, ctx, invars):
        return ctx.emit_child_outputs(0, invars)

    def emit_update(self, ctx, invars):
        ctx.emit_child_update(0)


class _ConditionalSubsystem(_HierBlock):
    """Common machinery for enable/trigger-gated subsystems."""

    has_state = True

    def validate_params(self) -> None:
        child = self.params.get("child")
        if child is None:
            raise ModelError("%s %r needs 'child'" % (self.type_name, self.name))

    def n_inputs(self) -> int:
        return 1 + _model_ports(self.params["child"])[0]

    def n_outputs(self) -> int:
        return _model_ports(self.params["child"])[1]

    def hierarchical_feedthrough(self, child_schedules, in_idx: int) -> bool:
        if in_idx == 0:
            return True
        return bool(child_schedules[0].ft_matrix.get(in_idx))

    def init_state(self):
        state = {"hold": self._hold_inits(), "active": 0}
        self._init_extra_state(state)
        return state

    def _init_extra_state(self, state) -> None:
        """Hook for subclasses needing more state (e.g. trigger memory)."""

    # ------------------------------------------------------------------ #
    # gate evaluation — subclasses implement both backends
    # ------------------------------------------------------------------ #
    def _gate(self, ctx, control):  # -> bool
        raise NotImplementedError

    def _emit_gate(self, ctx, control_var) -> str:  # -> 0/1 variable name
        raise NotImplementedError

    def output(self, ctx, inputs):
        if self._gate(ctx, inputs[0]):
            outs = ctx.exec_child_outputs(0, inputs[1:])
            outs = [wrap(v, ctx.out_dtype(i)) for i, v in enumerate(outs)]
            ctx.state["hold"] = outs
            ctx.state["active"] = 1
            return list(outs)
        ctx.state["active"] = 0
        return list(ctx.state["hold"])

    def update(self, ctx, inputs):
        if ctx.state["active"]:
            ctx.exec_child_update(0)

    def emit_output(self, ctx, invars):
        gate = self._emit_gate(ctx, invars[0])
        ctx.scratch["gate_var"] = gate
        holds = [
            ctx.state("hold%d" % i, repr(init))
            for i, init in enumerate(self._hold_inits())
        ]
        with ctx.suite("if %s:" % gate):
            child_outs = ctx.emit_child_outputs(0, invars[1:])
            for hold, out, i in zip(holds, child_outs, range(len(holds))):
                ctx.line("%s = %s" % (hold, ctx.wrap(out, ctx.out_dtype(i))))
        return holds

    def emit_update(self, ctx, invars):
        with ctx.suite("if %s:" % ctx.scratch["gate_var"]):
            ctx.emit_child_update(0)


@register_block
class EnabledSubsystem(_ConditionalSubsystem):
    """Executes its child while the enable input is positive.

    Inputs: (enable, child inputs...).  Outputs hold while disabled.

    Params:
        child: the child model.
        init_outputs: held output value(s) before first activation.
    """

    type_name = "EnabledSubsystem"

    def declare_branches(self, decl) -> None:
        cond = decl.condition("enable")
        decl.mcdc_group("enable", [cond])
        decl.decision("enabled", ("enabled", "disabled"), control_flow=True)

    def _gate(self, ctx, control) -> bool:
        enabled = control > 0
        truth = 1 if enabled else 0
        ctx.hit_condition(ctx.branches.conditions[0], truth)
        ctx.hit_mcdc(ctx.branches.mcdc_groups[0], truth_vector([truth]), truth)
        margin = float(control)
        ctx.hit_decision(
            ctx.branches.decisions[0],
            0 if enabled else 1,
            margins={0: margin if margin != 0 else -0.5, 1: -margin},
        )
        return enabled

    def _emit_gate(self, ctx, control_var) -> str:
        gate = ctx.tmp("en")
        ctx.line("%s = 1 if %s > 0 else 0" % (gate, control_var))
        ctx.hit_condition(ctx.branches.conditions[0], gate)
        ctx.hit_mcdc(ctx.branches.mcdc_groups[0], gate, gate)
        ctx.decision_hit_expr(ctx.branches.decisions[0], "(0 if %s else 1)" % gate)
        return gate


@register_block
class TriggeredSubsystem(_ConditionalSubsystem):
    """Executes its child on rising edges of the trigger input.

    Inputs: (trigger, child inputs...).  Outputs hold between triggers.
    """

    type_name = "TriggeredSubsystem"

    def declare_branches(self, decl) -> None:
        decl.decision("trigger", ("fired", "idle"), control_flow=True)

    def _init_extra_state(self, state) -> None:
        state["prev_trig"] = 0

    def _gate(self, ctx, control) -> bool:
        fired = control > 0 and ctx.state["prev_trig"] <= 0
        ctx.state["prev_trig"] = 1 if control > 0 else 0
        margin = float(control) if ctx.state["prev_trig"] == 0 else -1.0
        ctx.hit_decision(
            ctx.branches.decisions[0],
            0 if fired else 1,
            margins={0: 1.0 if fired else margin, 1: -1.0 if fired else 1.0},
        )
        return fired

    def _emit_gate(self, ctx, control_var) -> str:
        prev = ctx.state("prev_trig", "0")
        gate = ctx.tmp("trig")
        ctx.line(
            "%s = 1 if (%s > 0 and %s <= 0) else 0" % (gate, control_var, prev)
        )
        ctx.line("%s = 1 if %s > 0 else 0" % (prev, control_var))
        ctx.decision_hit_expr(ctx.branches.decisions[0], "(0 if %s else 1)" % gate)
        return gate


class _BranchGroup(_HierBlock):
    """Common machinery for If / SwitchCase action groups."""

    has_state = True

    def _children_list(self) -> List:
        raise NotImplementedError

    def _n_select_inputs(self) -> int:
        raise NotImplementedError

    def validate_params(self) -> None:
        children = self._children_list()
        if not children:
            raise ModelError("%s %r needs children" % (self.type_name, self.name))
        n_in, n_out = _model_ports(children[0])
        for child in children[1:]:
            if _model_ports(child) != (n_in, n_out):
                raise ModelError(
                    "%s %r: children port signatures differ"
                    % (self.type_name, self.name)
                )
        if n_out < 1:
            raise ModelError(
                "%s %r: children need at least one outport"
                % (self.type_name, self.name)
            )

    def n_inputs(self) -> int:
        return self._n_select_inputs() + _model_ports(self._children_list()[0])[0]

    def n_outputs(self) -> int:
        return _model_ports(self._children_list()[0])[1]

    def hierarchical_feedthrough(self, child_schedules, in_idx: int) -> bool:
        n_sel = self._n_select_inputs()
        if in_idx < n_sel:
            return True
        data_port = in_idx - n_sel + 1
        return any(bool(cs.ft_matrix.get(data_port)) for cs in child_schedules)

    def init_state(self):
        return {"hold": self._hold_inits(), "active": -1}

    # shared run-one-child helpers ------------------------------------- #
    def _run_child(self, ctx, child_idx, data_inputs):
        outs = ctx.exec_child_outputs(child_idx, data_inputs)
        outs = [wrap(v, ctx.out_dtype(i)) for i, v in enumerate(outs)]
        ctx.state["hold"] = outs
        ctx.state["active"] = child_idx
        return list(outs)

    def update(self, ctx, inputs):
        if ctx.state["active"] >= 0:
            ctx.exec_child_update(ctx.state["active"])
        ctx.state["active"] = -1

    def _emit_run_child(self, ctx, child_idx, data_invars, holds, taken_var):
        child_outs = ctx.emit_child_outputs(child_idx, data_invars)
        for i, (hold, out) in enumerate(zip(holds, child_outs)):
            ctx.line("%s = %s" % (hold, ctx.wrap(out, ctx.out_dtype(i))))
        ctx.line("%s = %d" % (taken_var, child_idx))

    def emit_update(self, ctx, invars):
        taken_var = ctx.scratch["taken_var"]
        n_children = ctx.scratch["n_children"]
        for idx in range(n_children):
            header = ("if" if idx == 0 else "elif") + " %s == %d:" % (taken_var, idx)
            with ctx.suite(header):
                ctx.emit_child_update(idx)


@register_block
class IfBlock(_BranchGroup):
    """If / elseif / else action group (paper mode (c)).

    Inputs: (cond1..condN, data inputs...).  The first true condition's
    child runs; otherwise the else child (if present); otherwise outputs
    hold.  Conditions are instrumented (mode (a)) and form an MCDC group
    whose outcome is the taken branch.

    Params:
        children: one child model per condition.
        else_child: optional else model.
        init_outputs: held output value(s).
    """

    type_name = "If"

    def _children_list(self):
        children = list(self.params.get("children", ()))
        if self.params.get("else_child") is not None:
            children.append(self.params["else_child"])
        return children

    def _n_select_inputs(self) -> int:
        return len(self.params.get("children", ()))

    def declare_branches(self, decl) -> None:
        n = self._n_select_inputs()
        conditions = [decl.condition("u%d" % (i + 1)) for i in range(n)]
        decl.mcdc_group("if", conditions, outcome_kind="branch")
        decl.decision(
            "if",
            ["branch%d" % (i + 1) for i in range(n)] + ["else"],
            control_flow=True,
        )

    def output(self, ctx, inputs):
        n = self._n_select_inputs()
        truths = [1 if v else 0 for v in inputs[:n]]
        for cond, truth in zip(ctx.branches.conditions, truths):
            ctx.hit_condition(cond, truth)
        taken = n
        for i, truth in enumerate(truths):
            if truth:
                taken = i
                break
        ctx.hit_mcdc(ctx.branches.mcdc_groups[0], truth_vector(truths), taken)
        margins = {
            i: (1.0 if truths[i] else -1.0) for i in range(n)
        }
        margins[n] = 1.0 if taken == n else -1.0
        ctx.hit_decision(ctx.branches.decisions[0], taken, margins=margins)
        data = inputs[n:]
        if taken < n:
            return self._run_child(ctx, taken, data)
        if self.params.get("else_child") is not None:
            return self._run_child(ctx, n, data)
        ctx.state["active"] = -1
        return list(ctx.state["hold"])

    def emit_output(self, ctx, invars):
        n = self._n_select_inputs()
        has_else = self.params.get("else_child") is not None
        holds = [
            ctx.state("hold%d" % i, repr(init))
            for i, init in enumerate(self._hold_inits())
        ]
        taken_var = ctx.tmp("taken")
        ctx.scratch["taken_var"] = taken_var
        ctx.scratch["n_children"] = n + (1 if has_else else 0)
        ctx.line("%s = -1" % taken_var)
        cond_vars = []
        for i in range(n):
            cv = ctx.tmp("c")
            ctx.line("%s = 1 if %s else 0" % (cv, invars[i]))
            ctx.hit_condition(ctx.branches.conditions[i], cv)
            cond_vars.append(cv)
        data = invars[n:]
        dec = ctx.branches.decisions[0]

        def emit_chain(i):
            if i < n:
                with ctx.suite("if %s:" % cond_vars[i]):
                    ctx.hit_decision(dec, i)
                    self._emit_run_child(ctx, i, data, holds, taken_var)
                with ctx.suite("else:"):
                    emit_chain(i + 1)
            else:
                ctx.hit_decision(dec, n)
                if has_else:
                    self._emit_run_child(ctx, n, data, holds, taken_var)

        emit_chain(0)
        if ctx.level == "model":
            vec = " | ".join(
                "(%s << %d)" % (cv, i) if i else cv
                for i, cv in enumerate(cond_vars)
            )
            # the MCDC outcome is the taken branch index (else == n); with
            # no else child taken_var stays -1, which also means "else"
            first_true = ctx.tmp("ft")
            ctx.line(
                "%s = %s if 0 <= %s < %d else %d"
                % (first_true, taken_var, taken_var, n, n)
            )
            ctx.hit_mcdc(ctx.branches.mcdc_groups[0], "(%s)" % vec, first_true)
        return holds


@register_block
class SwitchCase(_BranchGroup):
    """Switch-case action group: an integer selector picks the child.

    Inputs: (selector, data inputs...).

    Params:
        children: one child model per case.
        case_values: list of value-lists, one per child.
        default_child: optional default model.
        init_outputs: held output value(s).
    """

    type_name = "SwitchCase"

    def _children_list(self):
        children = list(self.params.get("children", ()))
        if self.params.get("default_child") is not None:
            children.append(self.params["default_child"])
        return children

    def _n_select_inputs(self) -> int:
        return 1

    def validate_params(self) -> None:
        super().validate_params()
        cases = self.params.get("case_values")
        n_children = len(self.params.get("children", ()))
        if not cases or len(cases) != n_children:
            raise ModelError(
                "SwitchCase %r: case_values must match children" % (self.name,)
            )
        seen = set()
        for values in cases:
            if not values:
                raise ModelError("SwitchCase %r: empty case" % (self.name,))
            for value in values:
                if value in seen:
                    raise ModelError(
                        "SwitchCase %r: duplicate case value %r" % (self.name, value)
                    )
                seen.add(value)

    def declare_branches(self, decl) -> None:
        n = len(self.params["children"])
        decl.decision(
            "case",
            ["case%d" % (i + 1) for i in range(n)] + ["default"],
            control_flow=True,
        )

    def output(self, ctx, inputs):
        selector = int(inputs[0])
        cases = self.params["case_values"]
        n = len(cases)
        taken = n
        for i, values in enumerate(cases):
            if selector in values:
                taken = i
                break
        margins = {
            i: -min(abs(float(selector) - float(v)) for v in values)
            + (0.5 if i == taken else 0.0)
            for i, values in enumerate(cases)
        }
        margins[n] = 0.5 if taken == n else -1.0
        ctx.hit_decision(ctx.branches.decisions[0], taken, margins=margins)
        data = inputs[1:]
        if taken < n:
            return self._run_child(ctx, taken, data)
        if self.params.get("default_child") is not None:
            return self._run_child(ctx, n, data)
        ctx.state["active"] = -1
        return list(ctx.state["hold"])

    def emit_output(self, ctx, invars):
        cases = self.params["case_values"]
        n = len(cases)
        has_default = self.params.get("default_child") is not None
        holds = [
            ctx.state("hold%d" % i, repr(init))
            for i, init in enumerate(self._hold_inits())
        ]
        taken_var = ctx.tmp("taken")
        ctx.scratch["taken_var"] = taken_var
        ctx.scratch["n_children"] = n + (1 if has_default else 0)
        ctx.line("%s = -1" % taken_var)
        selector = ctx.tmp("sel")
        ctx.line("%s = int(%s)" % (selector, invars[0]))
        data = invars[1:]
        dec = ctx.branches.decisions[0]
        for i, values in enumerate(cases):
            test = "%s in %r" % (selector, tuple(values))
            with ctx.suite(("if" if i == 0 else "elif") + " %s:" % test):
                ctx.hit_decision(dec, i)
                self._emit_run_child(ctx, i, data, holds, taken_var)
        with ctx.suite("else:"):
            ctx.hit_decision(dec, n)
            if has_default:
                self._emit_run_child(ctx, n, data, holds, taken_var)
        return holds
