"""Arithmetic blocks: Sum, Product, Gain, Abs, Sign, Bias, MinMax, ...

Integer results wrap with two's-complement semantics (the generated C
code's behaviour); ``single`` results round through 32-bit storage.  Abs,
Sign and MinMax carry decision points per Simulink's model coverage rules,
but they are *not* control-flow decisions — a C compiler emits branchless
fabs/cmov/fmin code for them, which is why the "Fuzz Only" ablation cannot
see them (paper Fig. 8 discussion).
"""

from __future__ import annotations

from ...dtypes import DOUBLE, wrap
from ...errors import ModelError
from ..block import Block, register_block

__all__ = [
    "Sum",
    "Product",
    "Gain",
    "Abs",
    "Sign",
    "Bias",
    "MinMax",
    "MathFunction",
    "Rounding",
    "UnaryMinus",
    "Sqrt",
]


@register_block
class Sum(Block):
    """Adds/subtracts its inputs according to the ``signs`` string.

    Params:
        signs: e.g. ``"++-"``; its length sets the input count.
    """

    type_name = "Sum"

    def validate_params(self) -> None:
        signs = self.params.get("signs", "++")
        if not signs or any(ch not in "+-" for ch in signs):
            raise ModelError("Sum %r: bad signs %r" % (self.name, signs))
        self.params["signs"] = signs
        self.params["n_in"] = len(signs)

    def output(self, ctx, inputs):
        total = 0
        for sign, value in zip(self.params["signs"], inputs):
            total = total + value if sign == "+" else total - value
        return [wrap(total, ctx.out_dtype(0))]

    def emit_output(self, ctx, invars):
        parts = []
        for sign, var in zip(self.params["signs"], invars):
            parts.append(("+ " if sign == "+" else "- ") + var)
        expr = " ".join(parts)
        if expr.startswith("+ "):
            expr = expr[2:]
        out = ctx.tmp("o")
        ctx.line("%s = %s" % (out, ctx.wrap("(%s)" % expr, ctx.out_dtype(0))))
        return [out]


@register_block
class Product(Block):
    """Multiplies/divides its inputs according to the ``ops`` string.

    Params:
        ops: e.g. ``"**/"``; division is total (0 on zero divisor).
    """

    type_name = "Product"

    def validate_params(self) -> None:
        ops = self.params.get("ops", "**")
        if not ops or ops[0] != "*" or any(ch not in "*/" for ch in ops):
            raise ModelError("Product %r: bad ops %r" % (self.name, ops))
        self.params["ops"] = ops
        self.params["n_in"] = len(ops)

    def output(self, ctx, inputs):
        from ...lang.ops import safe_div

        result = inputs[0]
        for op, value in zip(self.params["ops"][1:], inputs[1:]):
            result = result * value if op == "*" else safe_div(result, value)
        return [wrap(result, ctx.out_dtype(0))]

    def emit_output(self, ctx, invars):
        expr = invars[0]
        for op, var in zip(self.params["ops"][1:], invars[1:]):
            if op == "*":
                expr = "(%s * %s)" % (expr, var)
            else:
                expr = "_safe_div(%s, %s)" % (expr, var)
        out = ctx.tmp("o")
        ctx.line("%s = %s" % (out, ctx.wrap(expr, ctx.out_dtype(0))))
        return [out]


@register_block
class Gain(Block):
    """Multiplies by a constant ``gain``; output keeps the input type."""

    type_name = "Gain"

    def validate_params(self) -> None:
        if "gain" not in self.params:
            raise ModelError("Gain %r needs 'gain'" % (self.name,))

    def output(self, ctx, inputs):
        return [wrap(inputs[0] * self.params["gain"], ctx.out_dtype(0))]

    def emit_output(self, ctx, invars):
        out = ctx.tmp("o")
        expr = "(%s * %r)" % (invars[0], self.params["gain"])
        ctx.line("%s = %s" % (out, ctx.wrap(expr, ctx.out_dtype(0))))
        return [out]


@register_block
class Abs(Block):
    """Absolute value; one (branchless) decision: input negative or not."""

    type_name = "Abs"

    def declare_branches(self, decl) -> None:
        decl.decision("abs", ("negative", "non-negative"), control_flow=False)

    def output(self, ctx, inputs):
        value = inputs[0]
        negative = value < 0
        ctx.hit_decision(
            ctx.branches.decisions[0],
            0 if negative else 1,
            margins={0: -float(value), 1: float(value) + 0.5},
        )
        return [wrap(-value if negative else value, ctx.out_dtype(0))]

    def emit_output(self, ctx, invars):
        dec = ctx.branches.decisions[0]
        ctx.decision_hit_expr(dec, "(0 if %s < 0 else 1)" % invars[0])
        out = ctx.tmp("o")
        ctx.line("%s = %s" % (out, ctx.wrap("abs(%s)" % invars[0], ctx.out_dtype(0))))
        return [out]


@register_block
class Sign(Block):
    """Signum; one 3-outcome decision (negative / zero / positive)."""

    type_name = "Sign"

    def declare_branches(self, decl) -> None:
        decl.decision("sign", ("negative", "zero", "positive"), control_flow=False)

    def output(self, ctx, inputs):
        value = inputs[0]
        outcome = 0 if value < 0 else (1 if value == 0 else 2)
        ctx.hit_decision(
            ctx.branches.decisions[0],
            outcome,
            margins={0: -float(value), 1: -abs(float(value)) + 0.5, 2: float(value)},
        )
        result = -1 if value < 0 else (0 if value == 0 else 1)
        return [wrap(result, ctx.out_dtype(0))]

    def emit_output(self, ctx, invars):
        dec = ctx.branches.decisions[0]
        ctx.decision_hit_expr(
            dec, "(0 if %s < 0 else (1 if %s == 0 else 2))" % (invars[0], invars[0])
        )
        out = ctx.tmp("o")
        expr = "(-1 if %s < 0 else (0 if %s == 0 else 1))" % (invars[0], invars[0])
        ctx.line("%s = %s" % (out, ctx.wrap(expr, ctx.out_dtype(0))))
        return [out]


@register_block
class Bias(Block):
    """Adds a constant ``bias``."""

    type_name = "Bias"

    def validate_params(self) -> None:
        if "bias" not in self.params:
            raise ModelError("Bias %r needs 'bias'" % (self.name,))

    def output(self, ctx, inputs):
        return [wrap(inputs[0] + self.params["bias"], ctx.out_dtype(0))]

    def emit_output(self, ctx, invars):
        out = ctx.tmp("o")
        expr = "(%s + %r)" % (invars[0], self.params["bias"])
        ctx.line("%s = %s" % (out, ctx.wrap(expr, ctx.out_dtype(0))))
        return [out]


@register_block
class MinMax(Block):
    """Min or max over ``n_in`` inputs; decision = which input wins.

    Params:
        mode: ``"min"`` or ``"max"``.
        n_in: number of inputs (>= 1).
    """

    type_name = "MinMax"

    def validate_params(self) -> None:
        mode = self.params.get("mode", "min")
        if mode not in ("min", "max"):
            raise ModelError("MinMax %r: bad mode %r" % (self.name, mode))
        self.params["mode"] = mode
        self.params.setdefault("n_in", 2)
        if self.params["n_in"] < 1:
            raise ModelError("MinMax %r needs n_in >= 1" % (self.name,))

    def declare_branches(self, decl) -> None:
        n = self.params["n_in"]
        if n >= 2:
            decl.decision(
                self.params["mode"],
                ["input%d" % (i + 1) for i in range(n)],
                control_flow=False,
            )

    def output(self, ctx, inputs):
        mode = self.params["mode"]
        best_idx = 0
        best = inputs[0]
        for i, value in enumerate(inputs[1:], start=1):
            if (value < best) if mode == "min" else (value > best):
                best, best_idx = value, i
        if ctx.branches.decisions:
            margins = {
                i: -abs(float(v) - float(best)) + (0.5 if i == best_idx else 0.0)
                for i, v in enumerate(inputs)
            }
            ctx.hit_decision(ctx.branches.decisions[0], best_idx, margins=margins)
        return [wrap(best, ctx.out_dtype(0))]

    def emit_output(self, ctx, invars):
        fn = self.params["mode"]  # "min" or "max" builtin
        out = ctx.tmp("o")
        if len(invars) == 1:
            ctx.line("%s = %s" % (out, ctx.wrap(invars[0], ctx.out_dtype(0))))
            return [out]
        expr = "%s(%s)" % (fn, ", ".join(invars))
        ctx.line("%s = %s" % (out, ctx.wrap(expr, ctx.out_dtype(0))))
        if ctx.branches.decisions:
            dec = ctx.branches.decisions[0]
            # first-wins index, mirroring the interpreted argmin/argmax
            idx = ctx.tmp("i")
            values = "(%s)" % ", ".join(invars)
            ctx.line(
                "%s = %s.index(%s(%s))" % (idx, values, fn, ", ".join(invars))
            )
            ctx.decision_hit_expr(dec, idx)
        return [out]


@register_block
class MathFunction(Block):
    """Unary math function (sqrt, exp, sin, cos, tan); output is double.

    Params:
        fn: function name from the runtime builtin set.
    """

    type_name = "MathFunction"
    _ALLOWED = ("sqrt", "exp", "sin", "cos", "tan")

    def validate_params(self) -> None:
        fn = self.params.get("fn")
        if fn not in self._ALLOWED:
            raise ModelError(
                "MathFunction %r: fn must be one of %s" % (self.name, self._ALLOWED)
            )

    def output_dtypes(self, in_dtypes):
        return [DOUBLE]

    def output(self, ctx, inputs):
        from ...lang.ops import BUILTIN_IMPLS

        return [float(BUILTIN_IMPLS[self.params["fn"]](inputs[0]))]

    def emit_output(self, ctx, invars):
        out = ctx.tmp("o")
        ctx.line("%s = float(_f_%s(%s))" % (out, self.params["fn"], invars[0]))
        return [out]


@register_block
class Rounding(Block):
    """floor / ceil / round; output keeps the input type."""

    type_name = "Rounding"
    _ALLOWED = ("floor", "ceil", "round")

    def validate_params(self) -> None:
        fn = self.params.get("fn", "floor")
        if fn not in self._ALLOWED:
            raise ModelError("Rounding %r: bad fn %r" % (self.name, fn))
        self.params["fn"] = fn

    def output(self, ctx, inputs):
        from ...lang.ops import BUILTIN_IMPLS

        return [wrap(BUILTIN_IMPLS[self.params["fn"]](inputs[0]), ctx.out_dtype(0))]

    def emit_output(self, ctx, invars):
        out = ctx.tmp("o")
        expr = "_f_%s(%s)" % (self.params["fn"], invars[0])
        ctx.line("%s = %s" % (out, ctx.wrap(expr, ctx.out_dtype(0))))
        return [out]


@register_block
class UnaryMinus(Block):
    """Negation."""

    type_name = "UnaryMinus"

    def output(self, ctx, inputs):
        return [wrap(-inputs[0], ctx.out_dtype(0))]

    def emit_output(self, ctx, invars):
        out = ctx.tmp("o")
        ctx.line("%s = %s" % (out, ctx.wrap("(-%s)" % invars[0], ctx.out_dtype(0))))
        return [out]


@register_block
class Sqrt(Block):
    """Square root (total: 0 for negative input); output is double."""

    type_name = "Sqrt"

    def output_dtypes(self, in_dtypes):
        return [DOUBLE]

    def output(self, ctx, inputs):
        from ...lang.ops import safe_sqrt

        return [safe_sqrt(inputs[0])]

    def emit_output(self, ctx, invars):
        out = ctx.tmp("o")
        ctx.line("%s = _f_sqrt(%s)" % (out, invars[0]))
        return [out]
