"""Shared machinery for blocks that embed mini-language code.

Charts, MATLAB Function blocks and the If action group all contain guards
and statement bodies written in :mod:`repro.lang`.  Their branch elements
must be *declared* (into the BranchDB), *hit* (by the interpreter) and
*emitted* (by the code generator) in exactly the same order — this module
is the single implementation of that traversal.

The sink pattern: :func:`build_guard_info` / :func:`build_program_info`
walk the source structure once, pulling Decision/Condition/McdcGroup
records from a *sink*.  With a :class:`DeclareSink` the walk declares new
records; with a :class:`CursorSink` it re-reads the already-declared
records positionally.  Both executors therefore reconstruct an identical
structured view from the flat BranchDB lists.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ...errors import CodegenError
from ...lang.analysis import extract_conditions
from ...lang.ast import Expr, If, Program, While
from ...lang.interp import eval_guard, exec_program
from ...lang.pyemit import emit_expr

__all__ = [
    "DeclareSink",
    "CursorSink",
    "GuardInfo",
    "IfInfo",
    "ProgramInfo",
    "build_guard_info",
    "build_program_info",
    "run_guard",
    "run_program",
    "emit_guard",
    "emit_program",
    "truth_vector",
]


# ---------------------------------------------------------------------- #
# sinks
# ---------------------------------------------------------------------- #
class DeclareSink:
    """Sink that declares records through a BranchDeclarator."""

    def __init__(self, declarator):
        self._decl = declarator

    def decision(self, label, outcomes, control_flow=True):
        return self._decl.decision(label, outcomes, control_flow=control_flow)

    def condition(self, label):
        return self._decl.condition(label)

    def group(self, label, conditions, outcome_kind="bool"):
        return self._decl.mcdc_group(label, conditions, outcome_kind=outcome_kind)


class CursorSink:
    """Sink that replays records from an existing BlockBranches in order."""

    def __init__(self, branches):
        self._branches = branches
        self._d = 0
        self._c = 0
        self._g = 0

    def decision(self, label, outcomes, control_flow=True):
        dec = self._branches.decisions[self._d]
        self._d += 1
        return dec

    def condition(self, label):
        cond = self._branches.conditions[self._c]
        self._c += 1
        return cond

    def group(self, label, conditions, outcome_kind="bool"):
        grp = self._branches.mcdc_groups[self._g]
        self._g += 1
        return grp


# ---------------------------------------------------------------------- #
# structured views
# ---------------------------------------------------------------------- #
@dataclass
class GuardInfo:
    """One decomposed guard: atoms, skeleton, and its BranchDB records."""

    atoms: List[Expr]
    skeleton: Expr
    conditions: List[object]
    group: Optional[object]


@dataclass
class IfInfo:
    """One If statement: its decision plus per-branch guard infos."""

    decision: object
    guards: List[GuardInfo]


@dataclass
class ProgramInfo:
    """A statement body with all its If statements resolved."""

    program: Program
    ifs: List[IfInfo] = field(default_factory=list)


def build_guard_info(sink, guard: Expr, label: str) -> GuardInfo:
    """Declare/replay the condition probes + MCDC group of one guard."""
    atoms, skeleton = extract_conditions(guard)
    conditions = [
        sink.condition("%s/c%d" % (label, i)) for i in range(len(atoms))
    ]
    group = sink.group(label, conditions) if conditions else None
    return GuardInfo(atoms, skeleton, conditions, group)


def build_program_info(sink, program: Program, label: str) -> ProgramInfo:
    """Declare/replay all branch elements of a statement body.

    Walks If statements in static source order (the same numbering
    :func:`repro.lang.interp.number_ifs` assigned), declaring one decision
    per If plus guard conditions/MCDC groups per branch.
    """
    info = ProgramInfo(program)

    def walk(stmts):
        for stmt in stmts:
            if isinstance(stmt, If):
                n = len(stmt.branches)
                if_label = "%s/if%d" % (label, stmt._if_index)
                decision = sink.decision(
                    if_label,
                    ["branch%d" % i for i in range(n)] + ["else"],
                    control_flow=True,
                )
                guards = [
                    build_guard_info(sink, guard, "%s/g%d" % (if_label, bi))
                    for bi, (guard, _) in enumerate(stmt.branches)
                ]
                # keep ifs indexable by the static if index
                while len(info.ifs) <= stmt._if_index:
                    info.ifs.append(None)
                info.ifs[stmt._if_index] = IfInfo(decision, guards)
                for _, body in stmt.branches:
                    walk(body)
                walk(stmt.orelse)
            elif isinstance(stmt, While):
                # loop guards are deliberately probe-free (a loop is a
                # computation bound, not a coverage target); only the
                # Ifs inside the body declare branch elements
                walk(stmt.body)

    walk(program.body)
    return info


def truth_vector(truths: List[int]) -> int:
    """Pack condition truth values into the MCDC vector bits."""
    vec = 0
    for i, truth in enumerate(truths):
        if truth:
            vec |= 1 << i
    return vec


# ---------------------------------------------------------------------- #
# interpreted execution with probe recording
# ---------------------------------------------------------------------- #
def run_guard(ctx, info: GuardInfo, env: Dict[str, object]):
    """Evaluate one guard, hitting its probes; returns (outcome, margin)."""
    outcome, truths, margin, _atom_margins = eval_guard(
        info.atoms, info.skeleton, env
    )
    for cond, truth in zip(info.conditions, truths):
        ctx.hit_condition(cond, truth)
    if info.group is not None:
        ctx.hit_mcdc(info.group, truth_vector(truths), outcome)
    return outcome, margin


def run_program(ctx, info: ProgramInfo, env: Dict[str, object], wrap_map=None):
    """Execute a statement body, hitting decision/condition/MCDC probes."""

    def hook(if_index, taken, guards_evaluated):
        if_info = info.ifs[if_index]
        margins = {}
        for bi, result in enumerate(guards_evaluated):
            outcome, truths, margin, _ = result
            guard = if_info.guards[bi]
            for cond, truth in zip(guard.conditions, truths):
                ctx.hit_condition(cond, truth)
            if guard.group is not None:
                ctx.hit_mcdc(guard.group, truth_vector(truths), outcome)
            margins[bi] = margin
        ctx.hit_decision(if_info.decision, taken, margins)

    exec_program(info.program, env, if_hook=hook, wrap_map=wrap_map)


# ---------------------------------------------------------------------- #
# code emission with probe instrumentation
# ---------------------------------------------------------------------- #
def emit_guard(ctx, info: GuardInfo, var_map: Dict[str, str]) -> str:
    """Emit guard evaluation code; returns the 0/1 guard variable name.

    Every condition atom becomes its own local with a condition probe hit
    (instrumentation mode (a)/(d)); the MCDC vector record follows.  All
    atoms are evaluated unconditionally, like Simulink's dataflow logic.
    """
    cond_vars = []
    for i, atom in enumerate(info.atoms):
        cv = ctx.tmp("c")
        ctx.line("%s = 1 if %s else 0" % (cv, emit_expr(atom, var_map)))
        ctx.hit_condition(info.conditions[i], cv)
        cond_vars.append(cv)
    guard_var = ctx.tmp("g")
    ctx.line(
        "%s = %s"
        % (guard_var, emit_expr(info.skeleton, var_map, cond_names=cond_vars))
    )
    if info.group is not None:
        vec = " | ".join(
            "(%s << %d)" % (cv, i) if i else cv for i, cv in enumerate(cond_vars)
        )
        ctx.hit_mcdc(info.group, "(%s)" % vec, guard_var)
    return guard_var


def emit_program(ctx, info: ProgramInfo, var_map: Dict[str, str], wrap_map=None):
    """Emit a statement body with full branch instrumentation."""
    _emit_stmts(ctx, info, info.program.body, var_map, wrap_map or {})


def _emit_stmts(ctx, info, stmts, var_map, wrap_map):
    from ...lang.ast import Assign

    for stmt in stmts:
        if isinstance(stmt, Assign):
            if stmt.target not in var_map:
                raise CodegenError("unmapped assignment target %r" % (stmt.target,))
            value = emit_expr(stmt.value, var_map)
            dtype = wrap_map.get(stmt.target)
            ctx.line("%s = %s" % (var_map[stmt.target], ctx.wrap(value, dtype)))
        elif isinstance(stmt, If):
            _emit_if(ctx, info, stmt, var_map, wrap_map)
        elif isinstance(stmt, While):
            # the watchdog tick leads the body so even a pass-through
            # iteration (while 1 ... end) charges the step budget; see
            # repro.faults.watchdog
            with ctx.suite("while %s:" % emit_expr(stmt.cond, var_map)):
                ctx.line("_wd_tick()")
                _emit_stmts(ctx, info, stmt.body, var_map, wrap_map)
        else:  # pragma: no cover - defensive
            raise CodegenError("cannot emit statement %r" % (stmt,))


def _emit_if(ctx, info, stmt, var_map, wrap_map):
    if_info = info.ifs[stmt._if_index]

    def emit_branch(bi):
        if bi < len(stmt.branches):
            guard_var = emit_guard(ctx, if_info.guards[bi], var_map)
            with ctx.suite("if %s:" % guard_var):
                ctx.hit_decision(if_info.decision, bi)
                _emit_stmts(ctx, info, stmt.branches[bi][1], var_map, wrap_map)
            with ctx.suite("else:"):
                emit_branch(bi + 1)
        else:
            ctx.hit_decision(if_info.decision, len(stmt.branches))
            _emit_stmts(ctx, info, stmt.orelse, var_map, wrap_map)

    emit_branch(0)
