"""Block base class and the block template registry.

Every Simulink-like block type is a subclass of :class:`Block` registered
under its type name.  A block template defines, in one place, everything the
rest of the pipeline needs:

* structural facts — port counts, direct feedthrough, output data types;
* **branch elements** — the decisions / conditions / MCDC groups the block
  contributes to the model-level BranchDB (paper §3.1.2, modes (a)–(d));
* **interpreted semantics** — ``output`` / ``update`` used by the dynamic
  simulation engine (the SimCoTest/SLDV substrate);
* **code templates** — ``emit_output`` / ``emit_update`` used by the code
  synthesis pipeline (the CFTCG substrate).

Keeping both executable semantics next to each other lets the test suite
cross-validate them, mirroring the paper's "verified the correctness of the
generated code by comparing simulation results with code execution results".
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Type

from ..dtypes import DType
from ..errors import ModelError

__all__ = ["Block", "BlockBranches", "register_block", "block_registry"]


class BlockBranches:
    """The branch elements one block instance contributes to the BranchDB.

    Filled in by :meth:`Block.declare_branches` via the declarator passed to
    it; consumed positionally (in declaration order) by both the interpreter
    and the code generator so probe ids always line up.
    """

    def __init__(self):
        self.decisions = []  # list[Decision]
        self.conditions = []  # list[Condition]
        self.mcdc_groups = []  # list[McdcGroup]

    @property
    def empty(self) -> bool:
        return not (self.decisions or self.conditions or self.mcdc_groups)


class Block:
    """Base class for all block templates.

    Subclasses set :attr:`type_name` and override the structural and
    semantic hooks.  Instances are identified inside a model by ``name``
    and carry a ``params`` dict (already-validated block parameters).
    """

    #: canonical type name used in the registry and the SLX serialization
    type_name: str = ""

    #: default number of input/output ports (overridable per instance)
    n_in: int = 1
    n_out: int = 1

    #: True if this block keeps state across steps (has an update phase)
    has_state: bool = False

    def __init__(self, name: str, **params):
        if not name or "/" in name:
            raise ModelError("invalid block name: %r" % (name,))
        self.name = name
        self.params = params
        self.validate_params()

    # ------------------------------------------------------------------ #
    # structure
    # ------------------------------------------------------------------ #
    def validate_params(self) -> None:
        """Check ``self.params``; raise :class:`ModelError` on bad values."""

    def n_inputs(self) -> int:
        return self.params.get("n_in", self.n_in)

    def n_outputs(self) -> int:
        return self.params.get("n_out", self.n_out)

    def direct_feedthrough(self, in_idx: int) -> bool:
        """Whether output values this step depend on input ``in_idx``."""
        return True

    def hierarchical_feedthrough(self, child_schedules, in_idx: int) -> bool:
        """Feedthrough for blocks with child models (subsystem family).

        ``child_schedules`` is the list of built child
        :class:`~repro.schedule.schedule.ModelSchedule` objects; the default
        ignores them and defers to :meth:`direct_feedthrough`.
        """
        return self.direct_feedthrough(in_idx)

    def needs_input_dtypes(self) -> bool:
        """Whether :meth:`output_dtypes` requires every input dtype.

        State blocks with an explicit ``dtype`` parameter return False so
        they can resolve inside feedback loops; they must then tolerate
        ``None`` entries in ``in_dtypes``.
        """
        return True

    def output_dtypes(self, in_dtypes: Sequence[DType]) -> List[DType]:
        """Data types of the outputs given resolved input types.

        The default propagates the common type of all inputs, or double for
        source-like blocks.  ``in_dtypes`` entries are never None.
        """
        from ..dtypes import DOUBLE, common_dtype

        if not in_dtypes:
            return [DOUBLE] * self.n_outputs()
        dt = in_dtypes[0]
        for other in in_dtypes[1:]:
            dt = common_dtype(dt, other)
        return [dt] * self.n_outputs()

    # ------------------------------------------------------------------ #
    # branch elements (paper §3.1.2)
    # ------------------------------------------------------------------ #
    def declare_branches(self, decl) -> None:
        """Register this block's decisions/conditions/MCDC groups.

        ``decl`` is a :class:`repro.schedule.branches.BranchDeclarator`
        scoped to this block's hierarchical path.  The default declares
        nothing (most plumbing blocks have no branch logic).
        """

    # ------------------------------------------------------------------ #
    # interpreted semantics (dynamic simulation engine)
    # ------------------------------------------------------------------ #
    def init_state(self) -> Optional[dict]:
        """Fresh state dict for one instance, or None for stateless blocks."""
        return None

    def output(self, ctx, inputs: list) -> list:
        """Compute output values for this step.

        ``inputs[i]`` is the value on input port ``i``; entries for
        non-feedthrough ports may be ``None`` (not yet computed) and must
        not be read.  ``ctx`` is a :class:`repro.simulate.interpreter
        .BlockContext` giving access to state and coverage recording.
        """
        raise NotImplementedError(self.type_name)

    def update(self, ctx, inputs: list) -> None:
        """Advance state at the end of the step (full inputs available)."""

    # ------------------------------------------------------------------ #
    # code templates (code synthesis pipeline)
    # ------------------------------------------------------------------ #
    def emit_output(self, ctx, invars: List[str]) -> List[str]:
        """Emit output-phase code; return the output variable names.

        ``ctx`` is a :class:`repro.codegen.context.EmitContext`; ``invars``
        are expressions (variable names) holding the input port values.
        """
        raise NotImplementedError(self.type_name)

    def emit_update(self, ctx, invars: List[str]) -> None:
        """Emit update-phase code (state advance)."""

    # ------------------------------------------------------------------ #
    # misc
    # ------------------------------------------------------------------ #
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<%s %r>" % (type(self).__name__, self.name)


_REGISTRY: Dict[str, Type[Block]] = {}


def register_block(cls: Type[Block]) -> Type[Block]:
    """Class decorator adding a block template to the global registry."""
    if not cls.type_name:
        raise ModelError("block class %s lacks type_name" % cls.__name__)
    if cls.type_name in _REGISTRY:
        raise ModelError("duplicate block type: %s" % cls.type_name)
    _REGISTRY[cls.type_name] = cls
    return cls


def block_registry() -> Dict[str, Type[Block]]:
    """A copy of the type-name → block-class registry."""
    return dict(_REGISTRY)
