"""The Model container: named blocks plus connections.

A model is one level of a block diagram.  Hierarchy is expressed by
``Subsystem``-family blocks whose ``child`` parameter is another
:class:`Model`.  The container is deliberately dumb — scheduling, typing
and branch extraction live in :mod:`repro.schedule`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from ..errors import ModelError
from .block import Block

__all__ = ["Connection", "Model", "child_models"]


def child_models(block: Block) -> List["Model"]:
    """The child models nested inside a block, in a deterministic order.

    Subsystem-family blocks store one child under ``params["child"]``;
    If/SwitchCase action groups store a list under ``params["children"]``
    plus an optional ``params["else_child"]`` / ``params["default_child"]``.
    """
    children: List[Model] = []
    child = block.params.get("child")
    if isinstance(child, Model):
        children.append(child)
    for item in block.params.get("children", ()):
        if isinstance(item, Model):
            children.append(item)
    for key in ("else_child", "default_child"):
        extra = block.params.get(key)
        if isinstance(extra, Model):
            children.append(extra)
    return children


@dataclass(frozen=True)
class Connection:
    """A signal line from ``src`` block's output port to ``dst``'s input."""

    src: str
    src_port: int
    dst: str
    dst_port: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return "%s:%d -> %s:%d" % (self.src, self.src_port, self.dst, self.dst_port)


class Model:
    """One level of a block diagram.

    Attributes:
        name: model (or subsystem) name.
        blocks: insertion-ordered mapping of block name → block instance.
        connections: list of :class:`Connection`.
    """

    def __init__(self, name: str):
        if not name:
            raise ModelError("model name must be non-empty")
        self.name = name
        self.blocks: Dict[str, Block] = {}
        self.connections: List[Connection] = []

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def add_block(self, block: Block) -> Block:
        if block.name in self.blocks:
            raise ModelError(
                "duplicate block name %r in model %r" % (block.name, self.name)
            )
        self.blocks[block.name] = block
        return block

    def connect(self, src: str, src_port: int, dst: str, dst_port: int) -> Connection:
        """Wire ``src:src_port`` to ``dst:dst_port`` with validation."""
        for name, role in ((src, "source"), (dst, "destination")):
            if name not in self.blocks:
                raise ModelError(
                    "unknown %s block %r in model %r" % (role, name, self.name)
                )
        if not 0 <= src_port < self.blocks[src].n_outputs():
            raise ModelError(
                "bad output port %d on block %r" % (src_port, src)
            )
        if not 0 <= dst_port < self.blocks[dst].n_inputs():
            raise ModelError("bad input port %d on block %r" % (dst_port, dst))
        if self.driver_of(dst, dst_port) is not None:
            raise ModelError(
                "input port %s:%d already driven" % (dst, dst_port)
            )
        conn = Connection(src, src_port, dst, dst_port)
        self.connections.append(conn)
        return conn

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def driver_of(self, dst: str, dst_port: int) -> Optional[Tuple[str, int]]:
        """The (block, port) driving an input port, or None if unconnected."""
        for conn in self.connections:
            if conn.dst == dst and conn.dst_port == dst_port:
                return (conn.src, conn.src_port)
        return None

    def consumers_of(self, src: str, src_port: int) -> List[Tuple[str, int]]:
        """All (block, port) inputs fed by an output port."""
        return [
            (c.dst, c.dst_port)
            for c in self.connections
            if c.src == src and c.src_port == src_port
        ]

    def blocks_of_type(self, type_name: str) -> List[Block]:
        """Blocks (this level only) whose template type is ``type_name``."""
        return [b for b in self.blocks.values() if b.type_name == type_name]

    def inports(self) -> List[Block]:
        """Inport blocks of this level, sorted by their port ``index``."""
        ports = self.blocks_of_type("Inport")
        return sorted(ports, key=lambda b: b.params["index"])

    def outports(self) -> List[Block]:
        """Outport blocks of this level, sorted by their port ``index``."""
        ports = self.blocks_of_type("Outport")
        return sorted(ports, key=lambda b: b.params["index"])

    def walk(self, prefix: str = "") -> Iterator[Tuple[str, Block]]:
        """Yield ``(hierarchical_path, block)`` over this model and children."""
        for block in self.blocks.values():
            path = prefix + block.name
            yield path, block
            for child in child_models(block):
                yield from child.walk(path + "/" + child.name + "/")

    def block_count(self) -> int:
        """Total number of blocks including nested subsystems."""
        return sum(1 for _ in self.walk())

    # ------------------------------------------------------------------ #
    # validation
    # ------------------------------------------------------------------ #
    def validate(self) -> None:
        """Structural validation of this level and all children.

        Checks that every input port is driven, that Inport/Outport indices
        are dense, and recurses into subsystem children.
        """
        for block in self.blocks.values():
            for i in range(block.n_inputs()):
                if self.driver_of(block.name, i) is None:
                    raise ModelError(
                        "unconnected input %s:%d in model %r"
                        % (block.name, i, self.name)
                    )
        for role, ports in (("Inport", self.inports()), ("Outport", self.outports())):
            indices = [p.params["index"] for p in ports]
            if indices != list(range(1, len(indices) + 1)):
                raise ModelError(
                    "%s indices of model %r must be 1..N, got %s"
                    % (role, self.name, indices)
                )
        for block in self.blocks.values():
            for child in child_models(block):
                child.validate()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<Model %r: %d blocks, %d connections>" % (
            self.name,
            len(self.blocks),
            len(self.connections),
        )
