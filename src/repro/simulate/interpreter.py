"""The interpreted execution engine.

:class:`ModelInstance` executes a converted schedule step by step: per
level, every block's output phase in schedule order, then (at step end)
every block's update phase.  Hierarchical blocks execute their children
through context callbacks, so conditional-execution semantics live in the
block templates, shared with the code generator.

Coverage probes are recorded into a :class:`CoverageRecorder`; an optional
``distance_hook`` receives per-decision branch-distance margins — the
feedback channel of the constraint-directed (SLDV-like) baseline.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..coverage.recorder import CoverageRecorder
from ..dtypes import wrap
from ..errors import SimulationError
from ..schedule.schedule import ModelSchedule, Schedule

__all__ = ["BlockContext", "ModelInstance"]


class BlockContext:
    """Execution context bound to one block instance (one path)."""

    __slots__ = (
        "block",
        "path",
        "branches",
        "state",
        "scratch",
        "_recorder",
        "_distance_hook",
        "_in_dtypes",
        "_out_dtypes",
        "_child_rts",
    )

    def __init__(self, block, path, branches, recorder, distance_hook,
                 in_dtypes, out_dtypes, child_rts):
        self.block = block
        self.path = path
        self.branches = branches
        self.state = block.init_state() or {}
        self.scratch: dict = {}
        self._recorder = recorder
        self._distance_hook = distance_hook
        self._in_dtypes = in_dtypes
        self._out_dtypes = out_dtypes
        self._child_rts = child_rts

    # ------------------------------------------------------------------ #
    # probes
    # ------------------------------------------------------------------ #
    def hit_decision(self, decision, outcome_idx: int, margins=None) -> None:
        if self._recorder is not None:
            self._recorder.hit(decision.probe(outcome_idx))
        if self._distance_hook is not None:
            self._distance_hook(decision, outcome_idx, margins)

    def hit_condition(self, condition, value) -> None:
        if self._recorder is not None:
            self._recorder.hit(condition.probe(1 if value else 0))

    def hit_mcdc(self, group, vector: int, outcome: int) -> None:
        if self._recorder is not None:
            self._recorder.record_mcdc(group.id, vector, outcome)

    # ------------------------------------------------------------------ #
    # dtypes
    # ------------------------------------------------------------------ #
    def out_dtype(self, port: int = 0):
        return self._out_dtypes[port] if port < len(self._out_dtypes) else None

    def in_dtype(self, port: int):
        return self._in_dtypes[port] if port < len(self._in_dtypes) else None

    # ------------------------------------------------------------------ #
    # hierarchy
    # ------------------------------------------------------------------ #
    def exec_child_outputs(self, child_idx: int, inputs: List) -> List:
        return self._child_rts[child_idx].run_output_phase(inputs)

    def exec_child_update(self, child_idx: int) -> None:
        self._child_rts[child_idx].run_update_phase()

    def reset(self) -> None:
        """Re-run model initialization for this block."""
        self.state = self.block.init_state() or {}
        self.scratch = {}
        for child in self._child_rts or ():
            child.reset()


class _LevelRuntime:
    """Runtime state of one diagram level."""

    def __init__(self, sched: ModelSchedule, prefix: str, recorder,
                 distance_hook, branch_db, monitor=None):
        self.sched = sched
        self.prefix = prefix
        self.monitor = monitor
        self.contexts: Dict[str, BlockContext] = {}
        self._values: Dict[Tuple[str, int], object] = {}
        model = sched.model
        self._inports = model.inports()
        self._outport_srcs = [
            sched.drivers[(port.name, 0)] for port in model.outports()
        ]
        self._exec_order = [
            name
            for name in sched.order
            if model.blocks[name].type_name not in ("Inport", "Outport")
        ]
        for name in self._exec_order:
            block = model.blocks[name]
            path = prefix + name
            kids = sched.children.get(name)
            child_rts = None
            if kids:
                child_rts = [
                    _LevelRuntime(
                        child,
                        path + "/" + child.model.name + "/",
                        recorder,
                        distance_hook,
                        branch_db,
                        monitor,
                    )
                    for child in kids
                ]
            self.contexts[name] = BlockContext(
                block,
                path,
                branch_db.block_branches(path),
                recorder,
                distance_hook,
                sched.input_dtypes(name),
                [sched.dtypes.get((name, o)) for o in range(block.n_outputs())],
                child_rts,
            )

    # ------------------------------------------------------------------ #
    def run_output_phase(self, inputs: List) -> List:
        values = self._values
        values.clear()
        drivers = self.sched.drivers
        for k, port in enumerate(self._inports):
            values[(port.name, 0)] = wrap(inputs[k], port.params["dtype"])
        for name in self._exec_order:
            ctx = self.contexts[name]
            block = ctx.block
            ins = [
                values.get(drivers.get((name, i)))
                for i in range(block.n_inputs())
            ]
            outs = block.output(ctx, ins)
            if len(outs) != block.n_outputs():
                raise SimulationError(
                    "block %s produced %d outputs, expected %d"
                    % (name, len(outs), block.n_outputs())
                )
            monitor = self.monitor
            for o, value in enumerate(outs):
                values[(name, o)] = value
                if monitor is not None:
                    monitor.record(self.prefix, name, o, value)
        return [values[src] for src in self._outport_srcs]

    def run_update_phase(self) -> None:
        values = self._values
        drivers = self.sched.drivers
        for name in self._exec_order:
            ctx = self.contexts[name]
            block = ctx.block
            ins = [
                values.get(drivers.get((name, i)))
                for i in range(block.n_inputs())
            ]
            block.update(ctx, ins)

    def reset(self) -> None:
        self._values.clear()
        for ctx in self.contexts.values():
            ctx.reset()


class ModelInstance:
    """An executable interpreted model.

    >>> schedule = convert(model)
    >>> instance = ModelInstance(schedule)
    >>> instance.init()
    >>> outputs = instance.step(1, 250, 3)
    """

    def __init__(
        self,
        schedule: Schedule,
        recorder: Optional[CoverageRecorder] = None,
        distance_hook: Optional[Callable] = None,
        monitor="default",
    ):
        """``monitor``: a :class:`~repro.simulate.monitor.SignalMonitor`,
        ``"default"`` to create one (Simulink-style signal logging, the
        normal simulation workload), or None to disable."""
        from .monitor import SignalMonitor

        if monitor == "default":
            monitor = SignalMonitor()
        self.schedule = schedule
        self.recorder = recorder
        self.monitor = monitor
        self._root = _LevelRuntime(
            schedule.root, "", recorder, distance_hook, schedule.branch_db, monitor
        )
        self._n_inputs = len(schedule.root.model.inports())

    def init(self) -> None:
        """Model initialization (run before every test input)."""
        self._root.reset()

    def step(self, *inputs) -> Tuple:
        """One model iteration: output phase, then update phase."""
        if len(inputs) != self._n_inputs:
            raise SimulationError(
                "expected %d inputs, got %d" % (self._n_inputs, len(inputs))
            )
        outputs = self._root.run_output_phase(list(inputs))
        self._root.run_update_phase()
        return tuple(outputs)
