"""Parametric input-signal shapes for simulation-based test generation.

SimCoTest-style generators construct model inputs as *signals* — shaped
value sequences per inport — rather than raw byte streams.  The catalog
covers the shapes its search mutates over: constant, step, ramp, pulse
train, sine, and uniform noise, each rendered over N iterations and
clipped to the inport's representable range.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from ..dtypes import DType, wrap
from ..errors import SimulationError

__all__ = ["SignalSpec", "render_signal", "signal_catalog"]

#: shape names available to the search
signal_catalog = ("constant", "step", "ramp", "pulse", "sine", "noise")


@dataclass
class SignalSpec:
    """One inport's signal: a shape plus numeric parameters.

    Parameters are interpreted per shape:

    * ``constant`` — ``base`` everywhere.
    * ``step`` — ``base`` before ``at`` (fraction of the horizon), then
      ``base + amp``.
    * ``ramp`` — linear from ``base`` to ``base + amp``.
    * ``pulse`` — ``base + amp`` for the first ``duty`` fraction of each
      ``period``-step cycle, else ``base``.
    * ``sine`` — ``base + amp * sin(2*pi*k/period)``.
    * ``noise`` — uniform in ``[base - amp, base + amp]`` from ``rng``.
    """

    shape: str
    base: float = 0.0
    amp: float = 0.0
    at: float = 0.5
    period: int = 8
    duty: float = 0.5

    def __post_init__(self):
        if self.shape not in signal_catalog:
            raise SimulationError("unknown signal shape %r" % (self.shape,))
        if self.period < 1:
            self.period = 1


def _clip(value: float, dtype: DType):
    if dtype.is_bool:
        return 1 if value > 0 else 0
    lo, hi = dtype.min_value, dtype.max_value
    if value < lo:
        value = lo
    elif value > hi:
        value = hi
    return wrap(value if dtype.is_float else int(value), dtype)


def render_signal(spec: SignalSpec, n_steps: int, dtype: DType, rng=None) -> List:
    """Render a spec into ``n_steps`` typed values."""
    values = []
    for k in range(n_steps):
        if spec.shape == "constant":
            raw = spec.base
        elif spec.shape == "step":
            raw = spec.base + (spec.amp if k >= spec.at * n_steps else 0.0)
        elif spec.shape == "ramp":
            frac = k / max(n_steps - 1, 1)
            raw = spec.base + spec.amp * frac
        elif spec.shape == "pulse":
            phase = k % spec.period
            raw = spec.base + (spec.amp if phase < spec.duty * spec.period else 0.0)
        elif spec.shape == "sine":
            raw = spec.base + spec.amp * math.sin(2.0 * math.pi * k / spec.period)
        else:  # noise
            if rng is None:
                raise SimulationError("noise signal needs an rng")
            raw = spec.base + spec.amp * (2.0 * rng.random() - 1.0)
        values.append(_clip(raw, dtype))
    return values
