"""Per-signal monitoring for the simulation engine.

Simulink's interpretive simulation does substantial per-step bookkeeping —
signal logging, min/max tracking for scopes and range checks, sample
recording.  The monitor reproduces that workload faithfully: every signal
value of every step updates running statistics and a bounded sample ring.
It is enabled by default on the interpreted path (disable with
``ModelInstance(..., monitor=None)``), and is part of why simulation-based
generation is orders of magnitude slower than running generated code —
the asymmetry the paper's evaluation is built on.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

__all__ = ["SignalMonitor", "SignalStats"]

_RING_SIZE = 32


class SignalStats:
    """Running statistics plus a bounded recent-sample ring for one signal."""

    __slots__ = ("count", "minimum", "maximum", "last", "total", "ring", "_pos")

    def __init__(self):
        self.count = 0
        self.minimum = None
        self.maximum = None
        self.last = None
        self.total = 0.0
        self.ring: List = [0.0] * _RING_SIZE
        self._pos = 0

    def record(self, value) -> None:
        numeric = float(value)
        if self.count == 0:
            self.minimum = numeric
            self.maximum = numeric
        else:
            if numeric < self.minimum:
                self.minimum = numeric
            if numeric > self.maximum:
                self.maximum = numeric
        self.count += 1
        self.last = value
        self.total += numeric
        self.ring[self._pos] = numeric
        self._pos = (self._pos + 1) % _RING_SIZE

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def recent(self) -> List[float]:
        """The recorded samples, oldest first — never the ring's padding.

        Before the ring wraps (``count < _RING_SIZE``) only the slots that
        were actually written are returned; exposing the raw ``ring`` list
        would interleave phantom ``0.0`` padding with real samples.
        """
        if self.count >= _RING_SIZE:
            return self.ring[self._pos:] + self.ring[: self._pos]
        return self.ring[: self._pos]


class SignalMonitor:
    """Signal log for one simulation run (keyed by level-local signal)."""

    def __init__(self):
        self._stats: Dict[Tuple[str, str, int], SignalStats] = {}

    def record(self, prefix: str, block: str, port: int, value) -> None:
        key = (prefix, block, port)
        stats = self._stats.get(key)
        if stats is None:
            stats = self._stats[key] = SignalStats()
        stats.record(value)

    def stats(self, prefix: str, block: str, port: int) -> SignalStats:
        return self._stats[(prefix, block, port)]

    def __len__(self) -> int:
        return len(self._stats)

    def reset(self) -> None:
        self._stats.clear()
