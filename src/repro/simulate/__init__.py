"""Dynamic model simulation (the interpreted execution path).

This engine walks the schedule block-by-block each step — the Python
analogue of Simulink's interpretive simulation.  It is deliberately the
*slow* path: the SimCoTest and SLDV baselines are built on it, while CFTCG
runs generated code, reproducing the speed asymmetry at the heart of the
paper's evaluation.

It is also the semantic reference: the test suite cross-validates compiled
programs against this interpreter on random models and inputs (the
paper's "comparing simulation results with code execution results").
"""

from .interpreter import BlockContext, ModelInstance
from .signals import SignalSpec, render_signal, signal_catalog

__all__ = [
    "BlockContext",
    "ModelInstance",
    "SignalSpec",
    "render_signal",
    "signal_catalog",
]
