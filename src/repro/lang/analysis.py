"""Static analysis over mini-language ASTs.

Two jobs:

* :func:`extract_conditions` — MCDC decomposition of a guard expression
  into its condition atoms plus a boolean *skeleton* in which each atom is
  replaced by a :class:`~repro.lang.ast.ConditionRef`.  The branch
  instrumentation pass uses this to hit one probe pair per condition
  (paper mode (a)/(d)) and to record MCDC truth vectors.
* name usage queries (:func:`used_names`, :func:`assigned_names`) used by
  block parameter validation.
"""

from __future__ import annotations

from typing import List, Set, Tuple

from .ast import (
    Assign,
    Bin,
    Call,
    ConditionRef,
    Expr,
    If,
    Name,
    Num,
    Program,
    Stmt,
    Unary,
    While,
    BOOL_OPS,
)

__all__ = ["extract_conditions", "used_names", "assigned_names"]


def extract_conditions(expr: Expr) -> Tuple[List[Expr], Expr]:
    """Split a boolean guard into (condition atoms, skeleton).

    An atom is a maximal subexpression that is not a ``&&``/``||``
    connective or a ``!`` negation — i.e. a relational comparison, a
    boolean variable, or any other boolean-valued leaf.  The skeleton is a
    copy of the expression tree where each atom is replaced by
    ``ConditionRef(i)``.

    For a guard that is itself a single atom, the result is one atom and a
    ``ConditionRef(0)`` skeleton.
    """
    atoms: List[Expr] = []

    def walk(node: Expr) -> Expr:
        if isinstance(node, Bin) and node.op in BOOL_OPS:
            return Bin(node.op, walk(node.left), walk(node.right))
        if isinstance(node, Unary) and node.op == "!":
            return Unary("!", walk(node.operand))
        atoms.append(node)
        return ConditionRef(len(atoms) - 1)

    return atoms, walk(expr)


def used_names(node) -> Set[str]:
    """All variable names read anywhere in an expression / stmt / program."""
    names: Set[str] = set()
    _collect_used(node, names)
    return names


def _collect_used(node, names: Set[str]) -> None:
    if isinstance(node, Program):
        for stmt in node.body:
            _collect_used(stmt, names)
    elif isinstance(node, Assign):
        _collect_used(node.value, names)
    elif isinstance(node, If):
        for guard, body in node.branches:
            _collect_used(guard, names)
            for stmt in body:
                _collect_used(stmt, names)
        for stmt in node.orelse:
            _collect_used(stmt, names)
    elif isinstance(node, While):
        _collect_used(node.cond, names)
        for stmt in node.body:
            _collect_used(stmt, names)
    elif isinstance(node, Name):
        names.add(node.id)
    elif isinstance(node, Unary):
        _collect_used(node.operand, names)
    elif isinstance(node, Bin):
        _collect_used(node.left, names)
        _collect_used(node.right, names)
    elif isinstance(node, Call):
        for arg in node.args:
            _collect_used(arg, names)
    elif isinstance(node, (Num, ConditionRef)):
        pass
    else:  # pragma: no cover - defensive
        raise TypeError("unknown node: %r" % (node,))


def assigned_names(node) -> Set[str]:
    """All variable names assigned anywhere in a stmt / program."""
    names: Set[str] = set()
    _collect_assigned(node, names)
    return names


def _collect_assigned(node, names: Set[str]) -> None:
    if isinstance(node, Program):
        for stmt in node.body:
            _collect_assigned(stmt, names)
    elif isinstance(node, Assign):
        names.add(node.target)
    elif isinstance(node, If):
        for _, body in node.branches:
            for stmt in body:
                _collect_assigned(stmt, names)
        for stmt in node.orelse:
            _collect_assigned(stmt, names)
    elif isinstance(node, While):
        for stmt in node.body:
            _collect_assigned(stmt, names)
