"""Runtime operator semantics shared by the interpreter and generated code.

Control models must never crash on arbitrary fuzz inputs, so partial
operations get total definitions (documented in DESIGN.md):

* ``safe_div(a, b)`` — 0 when ``b`` is 0 (integer or float), C-style
  truncating division for two ints, true division otherwise;
* ``safe_mod(a, b)`` — 0 when ``b`` is 0, C-style remainder (sign of the
  dividend) for ints;
* ``safe_sqrt(x)`` — 0 for negative ``x``.

These are exactly the guards an embedded code generator emits around
division-by-zero-capable blocks.
"""

from __future__ import annotations

import math

__all__ = ["safe_div", "safe_mod", "safe_sqrt", "BUILTIN_IMPLS"]


def safe_div(a, b):
    """Division that is total: 0 on zero divisor, C-truncation for ints."""
    if b == 0:
        return 0 if isinstance(a, int) and isinstance(b, int) else 0.0
    if isinstance(a, int) and isinstance(b, int):
        quotient = abs(a) // abs(b)
        if (a < 0) != (b < 0):
            quotient = -quotient
        return quotient
    return a / b


def safe_mod(a, b):
    """Remainder that is total: 0 on zero divisor, C semantics for ints."""
    if b == 0:
        return 0 if isinstance(a, int) and isinstance(b, int) else 0.0
    if isinstance(a, int) and isinstance(b, int):
        return a - safe_div(a, b) * b
    return math.fmod(a, b)


def safe_sqrt(x):
    """Square root that is total: 0 for negative input."""
    if x < 0:
        return 0.0
    return math.sqrt(x)


def _clamped_exp(x):
    """exp() that saturates instead of raising OverflowError."""
    if x > 700:
        return math.inf
    return math.exp(x)


#: name → callable for every builtin the mini language exposes.  The same
#: table is injected into the generated code's globals by the codegen
#: runtime, so interpreted and compiled semantics agree by construction.
BUILTIN_IMPLS = {
    "abs": abs,
    "min": min,
    "max": max,
    "floor": math.floor,
    "ceil": math.ceil,
    "round": round,
    "sqrt": safe_sqrt,
    "sin": math.sin,
    "cos": math.cos,
    "tan": math.tan,
    "exp": _clamped_exp,
    "sign": lambda x: (x > 0) - (x < 0),
    "mod": safe_mod,
}
