"""Mini action language for MATLAB Function blocks and Stateflow-like charts.

The paper's instrumentation mode (d) covers "all conditional judgments
inside blocks, such as Saturation, Matlab Function, Stateflow Chart".  To
reproduce that we need those blocks to contain real conditional code, so
this package implements a small MATLAB-flavoured language:

* expressions: arithmetic, relational, boolean (``&&``/``||``/``!``),
  bitwise ``&``/``|``, calls to a fixed builtin set;
* statements: assignment, ``if / elseif / else / end``.

It ships a tokenizer + recursive-descent parser (:mod:`parser`), an
evaluator with branch-distance margins (:mod:`interp`), a Python code
emitter for the synthesis pipeline (:mod:`pyemit`) and MCDC condition-atom
extraction (:mod:`analysis`).
"""

from .ast import (
    Assign,
    Bin,
    Call,
    ConditionRef,
    If,
    Name,
    Num,
    Program,
    Unary,
)
from .parser import parse_expr, parse_program
from .analysis import extract_conditions, assigned_names, used_names
from .interp import (
    eval_expr,
    eval_guard,
    exec_program,
    number_ifs,
    BUILTIN_FUNCTIONS,
)

__all__ = [
    "Assign",
    "Bin",
    "Call",
    "ConditionRef",
    "If",
    "Name",
    "Num",
    "Program",
    "Unary",
    "parse_expr",
    "parse_program",
    "extract_conditions",
    "assigned_names",
    "used_names",
    "eval_expr",
    "eval_guard",
    "exec_program",
    "number_ifs",
    "BUILTIN_FUNCTIONS",
]
