"""AST node types for the mini action language.

Plain dataclasses; all analysis lives in sibling modules.  Nodes are
hashable on identity, which the condition extractor relies on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

__all__ = [
    "Expr",
    "Num",
    "Name",
    "Unary",
    "Bin",
    "Call",
    "ConditionRef",
    "Stmt",
    "Assign",
    "If",
    "While",
    "Program",
    "BOOL_OPS",
    "CMP_OPS",
    "ARITH_OPS",
]

#: boolean connectives — these shape MCDC decomposition
BOOL_OPS = ("&&", "||")
#: relational operators — their operands yield numeric branch distances
CMP_OPS = ("<", "<=", ">", ">=", "==", "!=")
#: arithmetic / bitwise operators
ARITH_OPS = ("+", "-", "*", "/", "%", "&", "|")


class Expr:
    """Base class for expressions."""

    __slots__ = ()


@dataclass(eq=False)
class Num(Expr):
    """A numeric literal (int or float)."""

    value: object


@dataclass(eq=False)
class Name(Expr):
    """A variable reference."""

    id: str


@dataclass(eq=False)
class Unary(Expr):
    """Unary operation: ``-x`` or ``!x``."""

    op: str
    operand: Expr


@dataclass(eq=False)
class Bin(Expr):
    """Binary operation (see the *_OPS tuples)."""

    op: str
    left: Expr
    right: Expr


@dataclass(eq=False)
class Call(Expr):
    """Call to a builtin function, e.g. ``min(a, b)``."""

    func: str
    args: List[Expr]


@dataclass(eq=False)
class ConditionRef(Expr):
    """Placeholder for condition atom ``index`` in a guard skeleton.

    Produced by :func:`repro.lang.analysis.extract_conditions`; never
    produced by the parser.
    """

    index: int


class Stmt:
    """Base class for statements."""

    __slots__ = ()


@dataclass(eq=False)
class Assign(Stmt):
    """``target = value``."""

    target: str
    value: Expr


@dataclass(eq=False)
class If(Stmt):
    """``if / elseif* / else? / end`` chain.

    ``branches`` is a list of (guard, body) pairs in source order;
    ``orelse`` is the else body (possibly empty).
    """

    branches: List[Tuple[Expr, List[Stmt]]]
    orelse: List[Stmt] = field(default_factory=list)


@dataclass(eq=False)
class While(Stmt):
    """``while cond ... end`` loop.

    The guard carries no branch probes (a loop is bounded-or-buggy, not
    a coverage target); nested ``if`` statements inside the body are
    instrumented normally.  Both executors charge every body iteration
    one step against the armed watchdog
    (:data:`repro.faults.watchdog.WATCHDOG`), so a nonterminating loop
    raises :class:`~repro.errors.WatchdogTimeout` instead of hanging.
    """

    cond: Expr
    body: List[Stmt] = field(default_factory=list)


@dataclass(eq=False)
class Program:
    """A parsed statement sequence."""

    body: List[Stmt]
    source: Optional[str] = None
