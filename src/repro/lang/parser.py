"""Tokenizer and recursive-descent parser for the mini action language.

Grammar (statements)::

    program  := stmt*
    stmt     := 'if' expr sep block ('elseif' expr sep block)*
                ('else' sep block)? 'end'
              | 'while' expr sep block 'end'
              | NAME '=' expr
    block    := stmt*
    sep      := ';' | NEWLINE (any number)

Expression precedence, low to high::

    ||  &&  |  &  (== !=)  (< <= > >=)  (+ -)  (* / %)  unary  primary

This mirrors C precedence closely enough for control-model guards; the
benchmark models only rely on the ordering shown above.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from ..errors import ParseError
from .ast import Assign, Bin, Call, Expr, If, Name, Num, Program, Stmt, Unary, While

__all__ = ["tokenize", "parse_expr", "parse_program"]

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>[ \t]+)
  | (?P<comment>\#[^\n]*)
  | (?P<newline>[\r\n]+|;)
  | (?P<float>(?:\d+\.\d*|\.\d+)(?:[eE][+-]?\d+)?|\d+[eE][+-]?\d+)
  | (?P<int>\d+)
  | (?P<name>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<op>&&|\|\||==|!=|<=|>=|[-+*/%<>=!&|(),])
    """,
    re.VERBOSE,
)

_KEYWORDS = ("if", "elseif", "else", "end", "while")


class Token:
    """One lexical token (kind, text, position)."""

    __slots__ = ("kind", "text", "pos")

    def __init__(self, kind: str, text: str, pos: int):
        self.kind = kind
        self.text = text
        self.pos = pos

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "Token(%s, %r)" % (self.kind, self.text)


def tokenize(source: str) -> List[Token]:
    """Tokenize ``source``; raises :class:`ParseError` on bad characters."""
    tokens: List[Token] = []
    pos = 0
    length = len(source)
    while pos < length:
        match = _TOKEN_RE.match(source, pos)
        if match is None:
            raise ParseError(
                "bad character %r at offset %d" % (source[pos], pos)
            )
        kind = match.lastgroup
        text = match.group()
        if kind == "name" and text in _KEYWORDS:
            kind = "kw"
        if kind not in ("ws", "comment"):
            tokens.append(Token(kind, text, pos))
        pos = match.end()
    tokens.append(Token("eof", "", length))
    return tokens


class _Parser:
    """Recursive-descent parser over a token list."""

    def __init__(self, tokens: List[Token], source: str):
        self._tokens = tokens
        self._source = source
        self._i = 0

    # -------------------------------------------------------------- #
    # token plumbing
    # -------------------------------------------------------------- #
    def _peek(self) -> Token:
        return self._tokens[self._i]

    def _next(self) -> Token:
        tok = self._tokens[self._i]
        self._i += 1
        return tok

    def _accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        tok = self._peek()
        if tok.kind == kind and (text is None or tok.text == text):
            return self._next()
        return None

    def _expect(self, kind: str, text: Optional[str] = None) -> Token:
        tok = self._accept(kind, text)
        if tok is None:
            got = self._peek()
            raise ParseError(
                "expected %s%s at offset %d, got %r"
                % (kind, " %r" % text if text else "", got.pos, got.text)
            )
        return tok

    def _skip_newlines(self) -> None:
        while self._accept("newline"):
            pass

    # -------------------------------------------------------------- #
    # expressions
    # -------------------------------------------------------------- #
    _LEVELS: List[Tuple[str, ...]] = [
        ("||",),
        ("&&",),
        ("|",),
        ("&",),
        ("==", "!="),
        ("<", "<=", ">", ">="),
        ("+", "-"),
        ("*", "/", "%"),
    ]

    def parse_expr(self) -> Expr:
        return self._binary(0)

    def _binary(self, level: int) -> Expr:
        if level >= len(self._LEVELS):
            return self._unary()
        ops = self._LEVELS[level]
        node = self._binary(level + 1)
        while True:
            tok = self._peek()
            if tok.kind == "op" and tok.text in ops:
                self._next()
                right = self._binary(level + 1)
                node = Bin(tok.text, node, right)
            else:
                return node

    def _unary(self) -> Expr:
        tok = self._peek()
        if tok.kind == "op" and tok.text in ("-", "!"):
            self._next()
            return Unary(tok.text, self._unary())
        if tok.kind == "op" and tok.text == "+":
            self._next()
            return self._unary()
        return self._primary()

    def _primary(self) -> Expr:
        tok = self._next()
        if tok.kind == "int":
            return Num(int(tok.text))
        if tok.kind == "float":
            return Num(float(tok.text))
        if tok.kind == "name":
            if self._accept("op", "("):
                args: List[Expr] = []
                if not self._accept("op", ")"):
                    while True:
                        args.append(self.parse_expr())
                        if self._accept("op", ")"):
                            break
                        self._expect("op", ",")
                return Call(tok.text, args)
            return Name(tok.text)
        if tok.kind == "op" and tok.text == "(":
            node = self.parse_expr()
            self._expect("op", ")")
            return node
        raise ParseError("unexpected token %r at offset %d" % (tok.text, tok.pos))

    # -------------------------------------------------------------- #
    # statements
    # -------------------------------------------------------------- #
    def parse_program(self) -> Program:
        body = self._block(terminators=())
        self._expect("eof")
        return Program(body, source=self._source)

    def _block(self, terminators: Tuple[str, ...]) -> List[Stmt]:
        stmts: List[Stmt] = []
        while True:
            self._skip_newlines()
            tok = self._peek()
            if tok.kind == "eof":
                return stmts
            if tok.kind == "kw" and tok.text in terminators:
                return stmts
            stmts.append(self._statement())

    def _statement(self) -> Stmt:
        if self._peek().kind == "kw" and self._peek().text == "if":
            return self._if_statement()
        if self._peek().kind == "kw" and self._peek().text == "while":
            return self._while_statement()
        name = self._expect("name")
        self._expect("op", "=")
        value = self.parse_expr()
        return Assign(name.text, value)

    def _if_statement(self) -> If:
        self._expect("kw", "if")
        branches = [(self.parse_expr(), self._block(("elseif", "else", "end")))]
        while self._accept("kw", "elseif"):
            branches.append(
                (self.parse_expr(), self._block(("elseif", "else", "end")))
            )
        orelse: List[Stmt] = []
        if self._accept("kw", "else"):
            orelse = self._block(("end",))
        self._expect("kw", "end")
        return If(branches, orelse)

    def _while_statement(self) -> While:
        self._expect("kw", "while")
        cond = self.parse_expr()
        body = self._block(("end",))
        self._expect("kw", "end")
        return While(cond, body)


def parse_expr(source: str) -> Expr:
    """Parse a single expression (e.g. a transition guard)."""
    parser = _Parser(tokenize(source), source)
    parser._skip_newlines()
    node = parser.parse_expr()
    parser._skip_newlines()
    parser._expect("eof")
    return node


def parse_program(source: str) -> Program:
    """Parse a statement sequence (e.g. a MATLAB Function body)."""
    return _Parser(tokenize(source), source).parse_program()
