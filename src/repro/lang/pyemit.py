"""Python source emission for mini-language expressions.

The code synthesis pipeline turns each model into one Python module; blocks
whose parameters contain mini-language code (guards, actions, MATLAB
Function bodies) lower their ASTs to Python expression strings with
:func:`emit_expr`.

Names are resolved through ``var_map`` (mini-language name → Python
expression), so the caller decides whether ``cnt`` lives in a local, a
``self._st_*`` attribute, or an inport variable.  Runtime helpers are
referenced by the fixed names ``_safe_div`` / ``_safe_mod`` / ``_f_<name>``
which :mod:`repro.codegen.runtime` injects into the generated module's
globals — keeping emitted code free of imports.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..errors import CodegenError
from .ast import Bin, Call, ConditionRef, Expr, Name, Num, Unary, CMP_OPS
from .ops import BUILTIN_IMPLS

__all__ = ["emit_expr"]

_ARITH = {"+": "+", "-": "-", "*": "*"}


def emit_expr(
    node: Expr,
    var_map: Dict[str, str],
    cond_names: Optional[List[str]] = None,
) -> str:
    """Lower an expression AST to a Python expression string.

    ``cond_names`` supplies the Python variables standing in for
    :class:`~repro.lang.ast.ConditionRef` placeholders when emitting a
    guard *skeleton* (they hold 0/1 ints computed from the atoms).
    """
    if isinstance(node, Num):
        return repr(node.value)
    if isinstance(node, Name):
        try:
            return var_map[node.id]
        except KeyError:
            raise CodegenError("unmapped variable %r" % (node.id,)) from None
    if isinstance(node, ConditionRef):
        if cond_names is None:
            raise CodegenError("ConditionRef outside guard skeleton")
        return cond_names[node.index]
    if isinstance(node, Unary):
        operand = emit_expr(node.operand, var_map, cond_names)
        if node.op == "-":
            return "(-%s)" % operand
        return "(0 if %s else 1)" % operand  # '!'
    if isinstance(node, Bin):
        left = emit_expr(node.left, var_map, cond_names)
        right = emit_expr(node.right, var_map, cond_names)
        return _emit_bin(node.op, left, right)
    if isinstance(node, Call):
        if node.func not in BUILTIN_IMPLS:
            raise CodegenError("unknown function %r" % (node.func,))
        args = ", ".join(emit_expr(a, var_map, cond_names) for a in node.args)
        return "_f_%s(%s)" % (node.func, args)
    raise CodegenError("cannot emit node %r" % (node,))


def _emit_bin(op: str, left: str, right: str) -> str:
    if op in _ARITH:
        return "(%s %s %s)" % (left, _ARITH[op], right)
    if op == "/":
        return "_safe_div(%s, %s)" % (left, right)
    if op == "%":
        return "_safe_mod(%s, %s)" % (left, right)
    if op in CMP_OPS:
        return "(1 if %s %s %s else 0)" % (left, op, right)
    if op == "&&":
        return "(1 if (%s and %s) else 0)" % (left, right)
    if op == "||":
        return "(1 if (%s or %s) else 0)" % (left, right)
    if op == "&":
        return "(int(%s) & int(%s))" % (left, right)
    if op == "|":
        return "(int(%s) | int(%s))" % (left, right)
    raise CodegenError("unknown operator %r" % (op,))
