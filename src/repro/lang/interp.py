"""Evaluator for the mini action language.

Three entry points:

* :func:`eval_expr` — plain expression evaluation over an environment.
* :func:`eval_guard` — guard evaluation that also returns per-condition
  truth values and *branch-distance margins*; the interpreter feeds these
  to the coverage recorder (condition probes + MCDC vectors) and to the
  SLDV-like baseline's search fitness.
* :func:`exec_program` — statement execution with an ``if`` hook so the
  caller (MATLAB Function / Chart blocks) can record decision outcomes.

Boolean connectives are evaluated *without* short-circuiting: all condition
atoms are computed every time, matching Simulink's dataflow semantics where
every logic-block input is a live signal.  Guards are side-effect free by
construction (the language has no assignment expressions), so this is safe.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..errors import SimulationError
from ..faults.watchdog import WATCHDOG
from .ast import (
    Assign,
    Bin,
    Call,
    ConditionRef,
    Expr,
    If,
    Name,
    Num,
    Program,
    Unary,
    While,
    BOOL_OPS,
    CMP_OPS,
)
from .ops import BUILTIN_IMPLS, safe_div, safe_mod

__all__ = [
    "eval_expr",
    "eval_guard",
    "exec_program",
    "number_ifs",
    "BUILTIN_FUNCTIONS",
]

#: names callable from the mini language
BUILTIN_FUNCTIONS = tuple(sorted(BUILTIN_IMPLS))

#: margin magnitude assigned to non-relational (boolean) atoms
_BOOL_MARGIN = 1.0


def eval_expr(node: Expr, env: Dict[str, object]):
    """Evaluate an expression over ``env``; booleans come back as 0/1."""
    if isinstance(node, Num):
        return node.value
    if isinstance(node, Name):
        try:
            return env[node.id]
        except KeyError:
            raise SimulationError("undefined variable %r" % (node.id,)) from None
    if isinstance(node, Unary):
        value = eval_expr(node.operand, env)
        if node.op == "-":
            return -value
        return 0 if value else 1  # '!'
    if isinstance(node, Bin):
        left = eval_expr(node.left, env)
        right = eval_expr(node.right, env)
        return _apply_bin(node.op, left, right)
    if isinstance(node, Call):
        impl = BUILTIN_IMPLS.get(node.func)
        if impl is None:
            raise SimulationError("unknown function %r" % (node.func,))
        args = [eval_expr(a, env) for a in node.args]
        return impl(*args)
    raise SimulationError("cannot evaluate node %r" % (node,))


def _apply_bin(op: str, left, right):
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        return safe_div(left, right)
    if op == "%":
        return safe_mod(left, right)
    if op == "<":
        return 1 if left < right else 0
    if op == "<=":
        return 1 if left <= right else 0
    if op == ">":
        return 1 if left > right else 0
    if op == ">=":
        return 1 if left >= right else 0
    if op == "==":
        return 1 if left == right else 0
    if op == "!=":
        return 1 if left != right else 0
    if op == "&&":
        return 1 if (left and right) else 0
    if op == "||":
        return 1 if (left or right) else 0
    if op == "&":
        return int(left) & int(right)
    if op == "|":
        return int(left) | int(right)
    raise SimulationError("unknown operator %r" % (op,))


def _atom_margin(atom: Expr, env: Dict[str, object]) -> Tuple[int, float]:
    """Evaluate one condition atom → (truth value, signed margin).

    The margin is positive when the atom is true and its magnitude is a
    measure of how far the operands are from flipping it — the classic
    branch-distance function from search-based testing.  Equality gets the
    conventional ``-|l-r|`` distance when false.
    """
    if isinstance(atom, Bin) and atom.op in CMP_OPS:
        left = eval_expr(atom.left, env)
        right = eval_expr(atom.right, env)
        diff = float(left) - float(right)
        if atom.op == "<":
            return (1 if diff < 0 else 0), -diff if diff != 0 else -0.5
        if atom.op == "<=":
            return (1 if diff <= 0 else 0), (-diff if diff != 0 else 0.5)
        if atom.op == ">":
            return (1 if diff > 0 else 0), diff if diff != 0 else -0.5
        if atom.op == ">=":
            return (1 if diff >= 0 else 0), (diff if diff != 0 else 0.5)
        if atom.op == "==":
            return (1 if diff == 0 else 0), (_BOOL_MARGIN if diff == 0 else -abs(diff))
        # '!='
        return (1 if diff != 0 else 0), (abs(diff) if diff != 0 else -_BOOL_MARGIN)
    value = eval_expr(atom, env)
    truth = 1 if value else 0
    return truth, _BOOL_MARGIN if truth else -_BOOL_MARGIN


def _skeleton_margin(node: Expr, truths: List[int], margins: List[float]) -> Tuple[int, float]:
    """Combine atom margins through the boolean skeleton.

    Tracey-style branch distances for search-based generation: a true
    ``&&`` is as robust as its weakest conjunct (min); a false ``&&`` is
    as far from true as the *sum* of its conjuncts' shortfalls — summing
    (rather than min) removes the plateaus where improving one conjunct
    worsens another without changing the min.  ``||`` takes the max
    (closest disjunct) either way; ``!`` negates.
    """
    if isinstance(node, ConditionRef):
        return truths[node.index], margins[node.index]
    if isinstance(node, Unary) and node.op == "!":
        truth, margin = _skeleton_margin(node.operand, truths, margins)
        return (0 if truth else 1), -margin
    if isinstance(node, Bin) and node.op in BOOL_OPS:
        lt, lm = _skeleton_margin(node.left, truths, margins)
        rt, rm = _skeleton_margin(node.right, truths, margins)
        if node.op == "&&":
            if lt and rt:
                return 1, min(lm, rm)
            shortfall = (min(lm, 0.0)) + (min(rm, 0.0))
            return 0, shortfall
        return (1 if lt or rt else 0), max(lm, rm)
    raise SimulationError("bad skeleton node %r" % (node,))


def eval_guard(
    atoms: List[Expr], skeleton: Expr, env: Dict[str, object]
) -> Tuple[int, List[int], float, List[float]]:
    """Evaluate a decomposed guard.

    Returns ``(outcome, atom_truths, guard_margin, atom_margins)`` where
    ``outcome`` is 0/1, ``atom_truths`` the per-condition values (MCDC
    vector bits) and the margins are branch distances as described above.
    """
    truths: List[int] = []
    margins: List[float] = []
    for atom in atoms:
        truth, margin = _atom_margin(atom, env)
        truths.append(truth)
        margins.append(margin)
    outcome, guard_margin = _skeleton_margin(skeleton, truths, margins)
    return outcome, truths, guard_margin, margins


def number_ifs(program: Program) -> int:
    """Statically number every If node in source order.

    Sets ``_if_index`` on each node and attaches the pre-decomposed guards
    (``_guards`` = list of (atoms, skeleton) per branch) so execution does
    not re-run condition extraction.  Returns the number of If nodes.
    Idempotent; called once per parsed body by the owning block.
    """
    from .analysis import extract_conditions

    counter = [0]

    def walk(stmts) -> None:
        for stmt in stmts:
            if isinstance(stmt, If):
                stmt._if_index = counter[0]
                counter[0] += 1
                stmt._guards = [
                    extract_conditions(guard) for guard, _ in stmt.branches
                ]
                for _, body in stmt.branches:
                    walk(body)
                walk(stmt.orelse)
            elif isinstance(stmt, While):
                walk(stmt.body)

    walk(program.body)
    return counter[0]


def exec_program(
    program: Program,
    env: Dict[str, object],
    if_hook: Optional[Callable] = None,
    wrap_map: Optional[Dict[str, object]] = None,
) -> None:
    """Execute statements, mutating ``env`` in place.

    The program must have been numbered with :func:`number_ifs` first when
    ``if_hook`` is used.  ``if_hook(if_index, branch_index,
    guards_evaluated)`` is invoked for every If statement executed:
    ``if_index`` is the node's static source-order number, ``branch_index``
    the taken branch (``len(branches)`` for the else), and
    ``guards_evaluated`` a list of :func:`eval_guard` results for every
    guard evaluated — i.e. up to and including the taken one (if/elseif
    chains short-circuit like the generated C code would).

    ``wrap_map`` maps variable names to :class:`~repro.dtypes.DType`;
    assignments to mapped names wrap their value (two's complement /
    float32 rounding), matching the generated code's typed variables.
    """
    _exec_stmts(program.body, env, if_hook, wrap_map)


def _exec_stmts(stmts, env, if_hook, wrap_map=None) -> None:
    from ..dtypes import wrap as _wrap

    for stmt in stmts:
        if isinstance(stmt, Assign):
            value = eval_expr(stmt.value, env)
            if wrap_map is not None:
                dtype = wrap_map.get(stmt.target)
                if dtype is not None:
                    value = _wrap(value, dtype)
            env[stmt.target] = value
        elif isinstance(stmt, If):
            _exec_if(stmt, env, if_hook, wrap_map)
        elif isinstance(stmt, While):
            # charge each body iteration one watchdog step, matching the
            # generated code's _wd_tick() emission — both engines abort
            # a runaway loop at the identical iteration count
            tick = WATCHDOG.tick
            while eval_expr(stmt.cond, env):
                tick()
                _exec_stmts(stmt.body, env, if_hook, wrap_map)
        else:  # pragma: no cover - defensive
            raise SimulationError("unknown statement %r" % (stmt,))


def _exec_if(stmt: If, env, if_hook, wrap_map=None) -> None:
    guards = getattr(stmt, "_guards", None)
    if guards is None:
        from .analysis import extract_conditions

        guards = [extract_conditions(guard) for guard, _ in stmt.branches]
    guards_evaluated = []
    taken = len(stmt.branches)  # default: else branch
    body = stmt.orelse
    for branch_index, (_, branch_body) in enumerate(stmt.branches):
        atoms, skeleton = guards[branch_index]
        result = eval_guard(atoms, skeleton, env)
        guards_evaluated.append(result)
        if result[0]:
            taken = branch_index
            body = branch_body
            break
    if if_hook is not None:
        if_hook(getattr(stmt, "_if_index", -1), taken, guards_evaluated)
    _exec_stmts(body, env, if_hook, wrap_map)
