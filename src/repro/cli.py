"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``fuzz`` — run CFTCG on a model container (or named benchmark) and
  write the test suite + CSV files; ``--serve-metrics PORT`` exposes the
  live campaign over HTTP (``/metrics``, ``/status``, ``/events``).
* ``codegen`` — print the generated (instrumented) model code and fuzz
  driver for inspection.
* ``compare`` — run all four generators on a model and print the
  Table-3-style comparison row.
* ``report`` — replay a saved suite against a model and print coverage.
* ``trace`` — analyze JSONL campaign traces offline: ``summary`` (phase/
  span/operator breakdown), ``curve`` (coverage over time), ``diff``
  (coverage/throughput/phase-time delta of two campaigns).
* ``bench`` — list the built-in benchmark models with their statistics.
"""

from __future__ import annotations

import argparse
import os
import sys

from . import __version__
from .bench.registry import build_schedule, model_names
from .codegen import generate_fuzz_driver, generate_model_code
from .csvio import suite_to_csv_dir
from .errors import ReproError
from .fuzzing import FuzzerConfig, TestSuite
from .fuzzing.engine import replay_suite
from .parser import model_from_xml
from .schedule import convert
from .slx import load_container

__all__ = ["main"]


def _count_or_auto_arg(text: str, what: str):
    """A positive integer or the string ``auto`` (``--lanes``,
    ``--kernel-threads``)."""
    if text == "auto":
        return "auto"
    try:
        n = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            "expected a positive integer or 'auto', got %r" % text
        )
    if n < 1:
        raise argparse.ArgumentTypeError("%s must be >= 1" % what)
    return n


def _lanes_arg(text: str):
    return _count_or_auto_arg(text, "lane count")


def _threads_arg(text: str):
    return _count_or_auto_arg(text, "thread count")


def _load_schedule(target: str):
    """A benchmark name or a path to an ``.slxz`` container."""
    if target in model_names():
        return build_schedule(target)
    if not os.path.exists(target):
        raise ReproError(
            "%r is neither a benchmark (%s) nor a file"
            % (target, ", ".join(model_names()))
        )
    return convert(model_from_xml(load_container(target)))


def _cmd_fuzz(args) -> int:
    from .fuzzing.parallel import run_campaign
    from .telemetry import Telemetry, telemetry_scope

    serve = args.serve_metrics is not None
    tel = Telemetry(
        enabled=bool(args.stats or args.trace or serve),
        trace_path=args.trace,
        stats_stream=sys.stderr if args.stats else None,
    )
    server = None
    try:
        if serve:
            from .telemetry.server import MetricsServer

            server = MetricsServer(tel, port=args.serve_metrics).start()
            print(
                "serving metrics on %s (/metrics /status /events)" % server.url,
                file=sys.stderr,
            )
        with telemetry_scope(tel):
            # the CLI owns the campaign root span so the parse phase
            # parents under it; the engine detects it and doesn't open
            # a second root
            root = tel.span_begin("campaign")
            with tel.phase("parse"):
                schedule = _load_schedule(args.model)
            config = FuzzerConfig(
                max_seconds=args.seconds,
                seed=args.seed,
                workers=args.workers,
                sync_rounds=args.sync_rounds,
                max_exec_steps=args.max_exec_steps,
                crash_dir=args.crash_dir,
                lanes=args.lanes,
                kernel=args.kernel,
                kernel_threads=args.kernel_threads,
            )
            result = run_campaign(schedule, config)
            tel.span_end(root)
    finally:
        if server is not None:
            server.close()
        tel.close()
    print(
        "executed %d inputs (%.0f model iterations/s, %.0f execs/s, %d worker%s)"
        % (
            result.inputs_executed,
            result.iterations_per_second,
            result.execs_per_second,
            config.workers,
            "s" if config.workers != 1 else "",
        )
    )
    print("coverage:", result.report)
    print("test cases: %d" % len(result.suite))
    if result.timeouts:
        print(
            "timeouts: %d input%s exceeded the %d-step budget%s"
            % (
                result.timeouts,
                "s" if result.timeouts != 1 else "",
                args.max_exec_steps or 0,
                " (artifacts in %s)" % args.crash_dir if args.crash_dir else "",
            )
        )
    if (args.verbose or args.stats) and result.phase_times:
        print(
            "phase times: "
            + "  ".join(
                "%s=%.3fs" % (name, secs)
                for name, secs in sorted(
                    result.phase_times.items(), key=lambda kv: -kv[1]
                )
            )
        )
    if args.trace:
        print("trace written to %s" % args.trace)
    if args.out:
        result.suite.save(args.out)
        suite_to_csv_dir(result.suite, schedule.layout, os.path.join(args.out, "csv"))
        print("suite written to %s (binary + csv/)" % args.out)
    if args.verbose and result.report.missed_decisions:
        print("missed decisions:")
        for item in result.report.missed_decisions:
            print("  -", item)
    return 0


def _cmd_codegen(args) -> int:
    from .codegen import optimize_source, step_arg_kinds
    from .telemetry import Telemetry, telemetry_scope

    tel = Telemetry(enabled=True, trace_path=args.trace)
    try:
        with telemetry_scope(tel):
            with tel.phase("parse"):
                schedule = _load_schedule(args.model)
            with tel.phase("codegen"):
                source = generate_model_code(schedule, args.level)
            if args.optimized:
                with tel.phase("optimize"):
                    source, _ = optimize_source(source, step_arg_kinds(schedule))
                counters = tel.snapshot()["counters"]
                print(
                    "# optimizer: %s"
                    % ", ".join(
                        "%s=%d" % (name.split(".", 1)[1], value)
                        for name, value in sorted(counters.items())
                        if name.startswith("optimizer.")
                    ),
                    file=sys.stderr,
                )
            driver = generate_fuzz_driver(schedule)
    finally:
        tel.close()
    if args.trace:
        print("trace written to %s" % args.trace, file=sys.stderr)
    if args.dump:
        os.makedirs(args.dump, exist_ok=True)
        suffix = "_opt" if args.optimized else ""
        model_path = os.path.join(
            args.dump, "%s_%s%s.py" % (schedule.model.name, args.level, suffix)
        )
        driver_path = os.path.join(
            args.dump, "%s_driver.py" % schedule.model.name
        )
        with open(model_path, "w", encoding="utf-8") as fh:
            fh.write(source + "\n")
        with open(driver_path, "w", encoding="utf-8") as fh:
            fh.write(driver + "\n")
        print("wrote %s and %s" % (model_path, driver_path))
        return 0
    print(source)
    print()
    print(driver)
    return 0


def _cmd_compare(args) -> int:
    from .codegen import compile_model
    from .experiments.report import format_table
    from .experiments.runner import TOOLS, run_tool

    schedule = _load_schedule(args.model)
    compiled = compile_model(schedule, "model")  # shared replay artifact
    rows = []
    for tool in TOOLS:
        result = run_tool(tool, schedule, args.seconds, seed=args.seed, compiled=compiled)
        rows.append(
            [
                tool,
                "%.1f%%" % result.report.decision,
                "%.1f%%" % result.report.condition,
                "%.1f%%" % result.report.mcdc,
                len(result.suite),
            ]
        )
    print(format_table(["tool", "DC", "CC", "MCDC", "cases"], rows))
    return 0


def _cmd_report(args) -> int:
    from .codegen import compile_model

    if args.trace:
        from .telemetry import read_trace, render_trace_report

        if args.model or args.suite:
            raise ReproError(
                "report --trace reads a campaign trace alone; "
                "drop the model/suite arguments"
            )
        print(render_trace_report(read_trace(args.trace)))
        return 0
    if not args.model or not args.suite:
        raise ReproError("report needs either --trace PATH or MODEL SUITE")
    schedule = _load_schedule(args.model)
    suite = TestSuite.load(args.suite)
    compiled = compile_model(schedule, "model")
    report = replay_suite(schedule, suite, compiled=compiled)
    print("suite: %d cases (tool: %s)" % (len(suite), suite.tool))
    print("coverage:", report)
    if args.verbose:
        from .coverage import CoverageRecorder, render_annotated

        recorder = CoverageRecorder(schedule.branch_db)
        replay_suite(schedule, suite, compiled=compiled, recorder=recorder)
        print(render_annotated(recorder))
    return 0


def _cmd_show(args) -> int:
    from .model.describe import describe_model, describe_schedule

    schedule = _load_schedule(args.model)
    print(describe_model(schedule.model))
    print()
    print(describe_schedule(schedule))
    return 0


def _cmd_minimize(args) -> int:
    from .codegen import compile_model
    from .fuzzing.minimize import minimize_suite
    from .fuzzing.engine import replay_suite

    schedule = _load_schedule(args.model)
    suite = TestSuite.load(args.suite)
    compiled = compile_model(schedule, "model")  # one compile for all passes
    reduced = minimize_suite(schedule, suite, compiled=compiled)
    before = replay_suite(schedule, suite, compiled=compiled)
    after = replay_suite(schedule, reduced, compiled=compiled)
    print("minimized %d -> %d cases" % (len(suite), len(reduced)))
    print("before:", before)
    print("after :", after)
    if args.out:
        reduced.save(args.out)
        print("written to", args.out)
    return 0


def _cmd_trace_summary(args) -> int:
    from .telemetry import read_trace
    from .telemetry.tools import dump_json, render_summary, trace_stats

    events = read_trace(args.trace)
    if args.json:
        print(dump_json(trace_stats(events)))
    else:
        print(render_summary(events))
    return 0


def _cmd_trace_curve(args) -> int:
    from .telemetry import read_trace
    from .telemetry.tools import dump_json, render_curve, trace_stats

    events = read_trace(args.trace)
    if args.json:
        stats = trace_stats(events)
        print(
            dump_json(
                {
                    "curve": stats["curve"],
                    "covered": stats["covered"],
                    "n_probes": stats["n_probes"],
                    "skipped_lines": stats["skipped_lines"],
                }
            )
        )
    else:
        print(render_curve(events))
    return 0


def _cmd_trace_diff(args) -> int:
    from .telemetry import read_trace
    from .telemetry.tools import dump_json, render_diff, trace_diff

    diff = trace_diff(
        read_trace(args.trace_a), read_trace(args.trace_b)
    )
    if args.json:
        diff["paths"] = {"A": args.trace_a, "B": args.trace_b}
        print(dump_json(diff))
    else:
        print("A = %s" % args.trace_a)
        print("B = %s" % args.trace_b)
        print()
        print(render_diff(diff))
    return 0


def _cmd_bench(args) -> int:
    from .experiments.table2 import collect_table2, render_table2

    print(render_table2(collect_table2()))
    return 0


def _cmd_serve(args) -> int:
    """Run the campaign-service daemon until interrupted.

    Prints ``serving on <url>`` to stderr once the API is bound (the
    same URL lands in ``<store>/endpoint``, which is how tests and CI
    discover an ephemeral port), then blocks; SIGINT/SIGTERM shut down
    gracefully — running jobs stay resumable on disk and a restart over
    the same store picks them up exactly.
    """
    import signal
    import time as _time

    from .service.daemon import ServiceDaemon

    pool = None if args.pool in (None, "auto") else int(args.pool)
    daemon = ServiceDaemon(
        args.store,
        host=args.host,
        port=args.port,
        pool_size=pool,
        slice_inputs=args.slice_inputs,
        start_method=args.start_method,
    )
    daemon.start()
    print("serving on %s" % daemon.api.url, file=sys.stderr)
    sys.stderr.flush()
    stopping = []
    signal.signal(signal.SIGTERM, lambda *_: stopping.append(True))
    try:
        while not stopping:
            _time.sleep(0.2)
    except KeyboardInterrupt:
        pass
    finally:
        daemon.stop()
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CFTCG reproduction: model test case generation through code based fuzzing",
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("fuzz", help="generate test cases with CFTCG")
    p.add_argument("model", help="benchmark name or .slxz path")
    p.add_argument("--seconds", type=float, default=10.0)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--workers",
        type=int,
        default=1,
        help="parallel campaign workers (1 = classic single-process loop)",
    )
    p.add_argument(
        "--sync-rounds",
        type=int,
        default=4,
        dest="sync_rounds",
        help="corpus-merge sync epochs in a multi-worker campaign",
    )
    p.add_argument(
        "--max-exec-steps",
        type=int,
        default=None,
        dest="max_exec_steps",
        metavar="N",
        help="per-input step budget for generated code; an input that "
        "exceeds it is recorded as a timeout artifact (default: no limit)",
    )
    p.add_argument(
        "--crash-dir",
        dest="crash_dir",
        metavar="DIR",
        help="persist deduplicated crash/timeout artifacts into DIR",
    )
    p.add_argument(
        "--lanes",
        type=_lanes_arg,
        default=1,
        metavar="N",
        help="lane-parallel execution: step N inputs in lockstep through "
        "the native kernel (max 256) or vectorized generated code "
        "(needs numpy, max 64); 'auto' picks per model; default 1 = "
        "the scalar engine",
    )
    p.add_argument(
        "--kernel",
        choices=("auto", "on", "off"),
        default="auto",
        help="fused native kernel backend: 'auto' uses it whenever lanes>1 "
        "and a C compiler is available, 'on' requests it even at one "
        "lane, 'off' disables it; every fallback to the numpy or "
        "scalar engine is reported via fault telemetry (default auto)",
    )
    p.add_argument(
        "--kernel-threads",
        dest="kernel_threads",
        type=_threads_arg,
        default="auto",
        metavar="N",
        help="kernel execution threads per worker: run disjoint lane "
        "blocks concurrently inside the native kernel (suite output is "
        "bit-identical at any thread count); 'auto' divides the "
        "container's available cores (scheduler affinity and cgroup "
        "quota aware) by --workers so threads x workers never "
        "oversubscribes (default auto)",
    )
    p.add_argument("--out", help="directory for the generated suite")
    p.add_argument(
        "--stats",
        action="store_true",
        help="print LibFuzzer-style status lines to stderr while fuzzing",
    )
    p.add_argument(
        "--trace",
        metavar="PATH",
        help="write a structured JSONL campaign trace to PATH",
    )
    p.add_argument(
        "--serve-metrics",
        dest="serve_metrics",
        type=int,
        default=None,
        metavar="PORT",
        help="serve live campaign observability over HTTP on 127.0.0.1:"
        "PORT while fuzzing: Prometheus /metrics, JSON /status (per-"
        "worker heartbeats, phase, plateau state), /events trace tail "
        "(0 = pick a free port)",
    )
    p.add_argument("-v", "--verbose", action="store_true")
    p.set_defaults(func=_cmd_fuzz)

    p = sub.add_parser("codegen", help="print generated code + fuzz driver")
    p.add_argument("model")
    p.add_argument("--level", choices=("model", "code", "none"), default="model")
    p.add_argument(
        "--dump",
        metavar="DIR",
        help="write model module + driver into DIR instead of stdout",
    )
    p.add_argument(
        "--optimized",
        action="store_true",
        help="run the audited AST optimizer over the module first",
    )
    p.add_argument(
        "--trace",
        metavar="PATH",
        help="write codegen telemetry events (optimizer stats, cache tier) to PATH",
    )
    p.set_defaults(func=_cmd_codegen)

    p = sub.add_parser("compare", help="run all generators on one model")
    p.add_argument("model")
    p.add_argument("--seconds", type=float, default=6.0)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_compare)

    p = sub.add_parser(
        "report", help="replay a saved suite — or render a campaign trace"
    )
    p.add_argument("model", nargs="?", help="benchmark name or .slxz path")
    p.add_argument(
        "suite", nargs="?", help="directory written by 'fuzz --out'"
    )
    p.add_argument(
        "--trace",
        metavar="PATH",
        help="render a JSONL campaign trace (no model execution)",
    )
    p.add_argument("-v", "--verbose", action="store_true")
    p.set_defaults(func=_cmd_report)

    p = sub.add_parser("show", help="describe a model and its branch elements")
    p.add_argument("model")
    p.set_defaults(func=_cmd_show)

    p = sub.add_parser("minimize", help="reduce a suite, preserving coverage")
    p.add_argument("model")
    p.add_argument("suite")
    p.add_argument("--out", help="directory for the reduced suite")
    p.set_defaults(func=_cmd_minimize)

    p = sub.add_parser(
        "trace", help="analyze JSONL campaign traces (no re-execution)"
    )
    tsub = p.add_subparsers(dest="trace_command", required=True)
    tp = tsub.add_parser(
        "summary", help="phase/span/operator breakdown of one campaign"
    )
    tp.add_argument("trace", help="JSONL trace written by 'fuzz --trace'")
    tp.add_argument("--json", action="store_true", help="machine-readable output")
    tp.set_defaults(func=_cmd_trace_summary)
    tp = tsub.add_parser(
        "curve", help="coverage-over-time curve from the trace's cov bitmaps"
    )
    tp.add_argument("trace", help="JSONL trace written by 'fuzz --trace'")
    tp.add_argument("--json", action="store_true", help="machine-readable output")
    tp.set_defaults(func=_cmd_trace_curve)
    tp = tsub.add_parser(
        "diff",
        help="compare two campaign traces: coverage, throughput, phase times",
    )
    tp.add_argument("trace_a", help="baseline trace")
    tp.add_argument("trace_b", help="candidate trace")
    tp.add_argument("--json", action="store_true", help="machine-readable output")
    tp.set_defaults(func=_cmd_trace_diff)

    p = sub.add_parser("bench", help="list benchmark models (Table 2)")
    p.set_defaults(func=_cmd_bench)

    p = sub.add_parser(
        "serve", help="run the campaign service daemon (job queue over HTTP)"
    )
    p.add_argument(
        "--store", required=True, help="durable job store directory"
    )
    p.add_argument("--host", default="127.0.0.1", help="bind address")
    p.add_argument(
        "--port",
        type=int,
        default=0,
        help="bind port (0 = ephemeral; the bound URL is printed to "
        "stderr and written to <store>/endpoint)",
    )
    p.add_argument(
        "--pool",
        default="auto",
        help="worker pool size (default: auto, cpu-aware)",
    )
    p.add_argument(
        "--slice-inputs",
        type=int,
        default=None,
        help="default per-slice input budget for jobs that don't set "
        "one (default: run each job's whole budget as one slice)",
    )
    p.add_argument(
        "--start-method",
        default=None,
        choices=("fork", "spawn", "forkserver"),
        help="multiprocessing start method for pool workers",
    )
    p.set_defaults(func=_cmd_serve)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2
    except BrokenPipeError:
        # downstream pager/head closed the pipe mid-print; exit quietly
        # like any well-behaved unix filter (devnull swallows the
        # implicit flush of the dead stdout at interpreter shutdown)
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0
