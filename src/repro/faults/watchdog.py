"""The per-execution step-budget watchdog.

Generated model code may contain genuine loops — ``while`` statements in
MATLAB-function bodies — and a fuzzer that feeds such code adversarial
inputs *will* eventually drive one into nontermination.  LibFuzzer
handles this with an alarm that turns a hung run into a ``timeout-...``
crash artifact; our equivalent is an instruction budget checked from
inside every generated loop body.

One process-global :class:`Watchdog` instance (:data:`WATCHDOG`) is
shared by the generated-code runtime and the interpreter so both engines
enforce identical budgets:

* the fuzz driver calls ``arm()`` once per input, loading ``remaining``
  from the configured ``limit``;
* every generated loop-body iteration calls ``tick()`` — a decrement and
  a comparison — and raises :class:`~repro.errors.WatchdogTimeout` when
  the budget is exhausted;
* with no limit configured (``limit is None``, the default) ``tick()``
  is a single attribute check, so loop-free models and unbounded runs
  pay nothing.

The budget is deliberately a *step* count, not wall time: identical
inputs exhaust it at identical points on every machine, which keeps
timeout artifacts and campaign byte streams deterministic.
"""

from __future__ import annotations

from typing import Optional

from ..errors import WatchdogTimeout

__all__ = ["Watchdog", "WATCHDOG"]


class Watchdog:
    """A rearmable countdown of generated-loop steps."""

    __slots__ = ("limit", "remaining")

    def __init__(self, limit: Optional[int] = None):
        #: steps granted to each execution; ``None`` disables the watchdog
        self.limit = limit
        #: steps left in the current execution (``None`` = disarmed)
        self.remaining: Optional[int] = None

    def configure(self, limit: Optional[int]) -> None:
        """Set the per-execution budget (and disarm until the next arm)."""
        self.limit = limit
        self.remaining = None

    def arm(self) -> None:
        """Start one execution's countdown from the configured limit."""
        self.remaining = self.limit

    def disarm(self) -> None:
        self.remaining = None

    def tick(self) -> None:
        """Consume one step; raises on an exhausted budget."""
        remaining = self.remaining
        if remaining is None:
            return
        if remaining <= 0:
            raise WatchdogTimeout(
                "generated code exceeded the %d-step execution budget"
                % (self.limit or 0)
            )
        self.remaining = remaining - 1


#: the process-global watchdog shared by generated code and interpreter
WATCHDOG = Watchdog()
