"""LibFuzzer-style crash artifacts for hung or crashing generated code.

When the watchdog interrupts a nonterminating execution the campaign
must not lose the evidence: the offending input *is* the bug report.
:class:`CrashStore` keeps one artifact per distinct failure point,
deduplicated by a **stack hash** — the hash of the (file, function,
line) frames of the raised exception's traceback, restricted to
generated/library code.  Ten thousand inputs that hang the same
``while`` loop produce one artifact with a count of ten thousand, just
like LibFuzzer's ``timeout-<hash>`` files.

With a ``root`` directory the store persists each new artifact as two
files (atomically, so a killed campaign never leaves torn artifacts):

* ``<kind>-<hash>`` — the raw input bytes, replayable with
  ``repro report`` / the fuzz driver;
* ``<kind>-<hash>.json`` — metadata: the stack frames, the exception
  text, first-seen campaign time, and the duplicate count (rewritten on
  later duplicates).

Without a root the store is memory-only, which is what a fuzzing worker
uses when no crash dir was configured.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import traceback
from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["stack_hash", "CrashArtifact", "CrashStore"]


def stack_hash(exc: BaseException) -> str:
    """A stable hex digest of the exception's raise site.

    Hashes the (filename, function, line) triples of the traceback —
    the same loop exhausting the budget from two different inputs hashes
    identically, while distinct loops (or distinct generated models)
    hash apart.  Falls back to the exception type name when the
    traceback is unavailable.
    """
    frames = traceback.extract_tb(exc.__traceback__)
    h = hashlib.sha256()
    if not frames:
        h.update(type(exc).__name__.encode("utf-8"))
    for frame in frames:
        h.update(
            ("%s:%s:%d\n" % (frame.filename, frame.name, frame.lineno or 0)).encode(
                "utf-8"
            )
        )
    return h.hexdigest()[:16]


@dataclass
class CrashArtifact:
    """One deduplicated failure: input bytes + where it failed."""

    kind: str  # "timeout" | "crash"
    hash: str
    data: bytes
    message: str
    frames: List[str] = field(default_factory=list)
    found_at: float = 0.0
    count: int = 1
    #: campaign-wide covered-probe count when the failure was recorded —
    #: documents that a watchdog abort did not discard pre-abort coverage
    probes_covered: Optional[int] = None

    @property
    def name(self) -> str:
        return "%s-%s" % (self.kind, self.hash)

    def meta(self) -> Dict:
        meta = {
            "kind": self.kind,
            "hash": self.hash,
            "message": self.message,
            "frames": self.frames,
            "found_at": round(self.found_at, 6),
            "count": self.count,
            "size": len(self.data),
        }
        if self.probes_covered is not None:
            meta["probes_covered"] = self.probes_covered
        return meta


class CrashStore:
    """Stack-hash-deduplicated artifact collection, optionally on disk."""

    def __init__(self, root: Optional[str] = None):
        self.root = root
        self.artifacts: Dict[str, CrashArtifact] = {}

    def __len__(self) -> int:
        return len(self.artifacts)

    def record(
        self,
        kind: str,
        data: bytes,
        exc: BaseException,
        found_at: float = 0.0,
        probes_covered: Optional[int] = None,
    ) -> CrashArtifact:
        """Record one failure; returns its (possibly pre-existing) artifact.

        A repeat of a known stack hash only bumps the duplicate count —
        the first-seen input is the canonical reproducer, matching
        LibFuzzer's keep-the-first behavior.  ``probes_covered`` (the
        campaign coverage at record time) tracks the latest duplicate, so
        the persisted metadata shows coverage kept advancing past the hang.
        """
        digest = stack_hash(exc)
        key = "%s-%s" % (kind, digest)
        artifact = self.artifacts.get(key)
        if artifact is not None:
            artifact.count += 1
            if probes_covered is not None:
                artifact.probes_covered = probes_covered
            self._persist_meta(artifact)
            return artifact
        frames = [
            "%s:%s:%d" % (f.filename, f.name, f.lineno or 0)
            for f in traceback.extract_tb(exc.__traceback__)
        ]
        artifact = CrashArtifact(
            kind=kind,
            hash=digest,
            data=data,
            message=str(exc),
            frames=frames,
            found_at=found_at,
            probes_covered=probes_covered,
        )
        self.artifacts[key] = artifact
        self._persist(artifact)
        return artifact

    # --------------------------- persistence -------------------------- #
    def _persist(self, artifact: CrashArtifact) -> None:
        if self.root is None:
            return
        os.makedirs(self.root, exist_ok=True)
        self._atomic_write(
            os.path.join(self.root, artifact.name), artifact.data
        )
        self._persist_meta(artifact)

    def _persist_meta(self, artifact: CrashArtifact) -> None:
        if self.root is None:
            return
        os.makedirs(self.root, exist_ok=True)
        payload = json.dumps(artifact.meta(), indent=2, sort_keys=True)
        self._atomic_write(
            os.path.join(self.root, artifact.name + ".json"),
            payload.encode("utf-8"),
        )

    def _atomic_write(self, path: str, payload: bytes) -> None:
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(payload)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            # artifacts are best-effort evidence; a full disk must not
            # take the campaign down with it

    @classmethod
    def load(cls, root: str) -> "CrashStore":
        """Read a persisted crash dir back into a store (for reports)."""
        store = cls(root)
        try:
            names = sorted(os.listdir(root))
        except OSError:
            return store
        for name in names:
            if not name.endswith(".json"):
                continue
            try:
                with open(os.path.join(root, name), "r", encoding="utf-8") as fh:
                    meta = json.load(fh)
                with open(os.path.join(root, name[: -len(".json")]), "rb") as fh:
                    data = fh.read()
            except (OSError, ValueError):
                continue  # torn artifact: skip, never crash the reader
            artifact = CrashArtifact(
                kind=meta.get("kind", "crash"),
                hash=meta.get("hash", ""),
                data=data,
                message=meta.get("message", ""),
                frames=list(meta.get("frames", ())),
                found_at=float(meta.get("found_at", 0.0)),
                count=int(meta.get("count", 1)),
                probes_covered=meta.get("probes_covered"),
            )
            store.artifacts[artifact.name] = artifact
        return store
