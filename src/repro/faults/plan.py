"""Deterministic fault-injection plans.

A plan is a list of :class:`FaultSpec` values, each naming one failure
mode plus the site parameters that select exactly *where* it fires and a
``times`` budget bounding *how often*.  Instrumented code asks
:func:`should_fire` at its failure site; the call matches the site
context against the installed plan and consumes one firing on a match —
so an injected fault happens at one deterministic point and, once the
recovery path has retried past it, never again.  That consumability is
what makes "campaign survives a worker death and still produces the
golden corpus digest" a testable statement.

Supported kinds (:data:`FAULT_KINDS`):

``worker_death``
    A parallel-campaign worker calls ``os._exit`` at the start of its
    budget slice.  Params: ``worker`` (default 0), ``epoch`` (default 0).
``slow_exec``
    A worker sleeps instead of fuzzing, simulating hung generated code
    that the in-process watchdog cannot interrupt.  Params: ``worker``,
    ``epoch``, ``seconds`` (default 3600 — effectively forever).
``cache_corrupt``
    The compile cache's disk read returns garbled bytes, exercising the
    corruption-quarantine path.  No params.
``trace_io_error``
    A telemetry trace write raises :class:`OSError`, exercising the
    degrade-to-disabled-sink path.  No params.
``store_corrupt``
    The campaign service's durable job store reads a garbled record,
    exercising its corruption-quarantine path (the job-store analogue of
    ``cache_corrupt``).  No params.

The environment syntax (``REPRO_FAULTS``) is a comma-separated list of
``kind`` or ``kind:param=value:param=value`` entries, e.g.::

    REPRO_FAULTS=worker_death:worker=0:epoch=1,cache_corrupt

Plans are plain picklable values: a parallel campaign parses the plan
once in the parent and ships the relevant specs to its workers inside
the epoch payload, which is how a respawned worker re-runs *without* the
fault (the parent strips it from the retry payload).
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from ..errors import FaultPlanError

__all__ = [
    "FAULT_KINDS",
    "FaultSpec",
    "FaultPlan",
    "parse_faults",
    "plan_from_env",
    "install",
    "get_plan",
    "clear",
    "fault_scope",
    "should_fire",
]

#: the failure modes the stack knows how to inject
FAULT_KINDS = (
    "worker_death",
    "slow_exec",
    "cache_corrupt",
    "trace_io_error",
    "store_corrupt",
)

#: REPRO_FAULTS params that are site selectors (matched against context)
_SITE_PARAMS = ("worker", "epoch")


@dataclass
class FaultSpec:
    """One injectable fault: kind + site selectors + firing budget."""

    kind: str
    #: site selectors (e.g. worker index, epoch); a spec matches a
    #: firing site only when every selector equals the site's context
    params: Dict[str, float] = field(default_factory=dict)
    #: how many times this spec may fire before it is exhausted
    times: int = 1
    #: firings consumed so far
    fired: int = 0

    def matches(self, context: Dict) -> bool:
        if self.fired >= self.times:
            return False
        for name in _SITE_PARAMS:
            if name in self.params and context.get(name) != self.params[name]:
                return False
        return True

    def param(self, name: str, default: float) -> float:
        return self.params.get(name, default)


@dataclass
class FaultPlan:
    """An ordered set of fault specs, installable process-locally."""

    specs: List[FaultSpec] = field(default_factory=list)

    def __bool__(self) -> bool:
        return bool(self.specs)

    def for_kinds(self, *kinds: str) -> "FaultPlan":
        """A sub-plan holding only the given kinds (shares no firing
        state with the parent — specs are copied unfired)."""
        return FaultPlan(
            [
                FaultSpec(s.kind, dict(s.params), s.times)
                for s in self.specs
                if s.kind in kinds
            ]
        )

    def without_kinds(self, *kinds: str) -> "FaultPlan":
        """A sub-plan with the given kinds removed (for retry payloads)."""
        return FaultPlan(
            [
                FaultSpec(s.kind, dict(s.params), s.times)
                for s in self.specs
                if s.kind not in kinds
            ]
        )

    def first_matching(self, kind: str, context: Dict) -> Optional[FaultSpec]:
        for spec in self.specs:
            if spec.kind == kind and spec.matches(context):
                return spec
        return None


def parse_faults(text: str) -> FaultPlan:
    """Parse a ``REPRO_FAULTS`` value into a :class:`FaultPlan`.

    Raises :class:`~repro.errors.FaultPlanError` on unknown kinds or
    malformed parameters — a typoed fault matrix entry must fail loudly,
    not silently inject nothing.
    """
    specs: List[FaultSpec] = []
    for entry in text.split(","):
        entry = entry.strip()
        if not entry:
            continue
        parts = entry.split(":")
        kind = parts[0].strip()
        if kind not in FAULT_KINDS:
            raise FaultPlanError(
                "unknown fault kind %r (known: %s)" % (kind, ", ".join(FAULT_KINDS))
            )
        params: Dict[str, float] = {}
        times = 1
        for part in parts[1:]:
            if "=" not in part:
                raise FaultPlanError(
                    "malformed fault param %r in %r (want name=value)"
                    % (part, entry)
                )
            name, _, raw = part.partition("=")
            name = name.strip()
            try:
                value = float(raw)
            except ValueError as exc:
                raise FaultPlanError(
                    "non-numeric fault param %r in %r" % (part, entry)
                ) from exc
            if name == "times":
                times = int(value)
            else:
                value = int(value) if value == int(value) else value
                params[name] = value
        specs.append(FaultSpec(kind, params, times))
    return FaultPlan(specs)


def plan_from_env(environ: Optional[Dict[str, str]] = None) -> FaultPlan:
    """The plan described by ``REPRO_FAULTS`` (empty when unset)."""
    environ = os.environ if environ is None else environ
    return parse_faults(environ.get("REPRO_FAULTS", ""))


# ---------------------------------------------------------------------- #
# process-local installation
# ---------------------------------------------------------------------- #
_ACTIVE: Optional[FaultPlan] = None
_ENV_LOADED = False


def install(plan: Optional[FaultPlan]) -> Optional[FaultPlan]:
    """Install ``plan`` process-locally; returns the previous plan.

    Passing ``None`` clears injection entirely (the ``REPRO_FAULTS``
    environment is *not* re-read until :func:`clear` resets the module).
    """
    global _ACTIVE, _ENV_LOADED
    previous = _ACTIVE
    _ACTIVE = plan
    _ENV_LOADED = True
    return previous


def get_plan() -> Optional[FaultPlan]:
    """The active plan; lazily loads ``REPRO_FAULTS`` on first use."""
    global _ACTIVE, _ENV_LOADED
    if not _ENV_LOADED:
        _ENV_LOADED = True
        env_plan = plan_from_env()
        _ACTIVE = env_plan if env_plan else None
    return _ACTIVE


def clear() -> None:
    """Drop the active plan and forget the env was ever read (tests)."""
    global _ACTIVE, _ENV_LOADED
    _ACTIVE = None
    _ENV_LOADED = False


@contextmanager
def fault_scope(plan: Optional[FaultPlan]) -> Iterator[Optional[FaultPlan]]:
    """Temporarily install ``plan`` (restores the previous on exit)."""
    previous = install(plan)
    try:
        yield plan
    finally:
        install(previous)


def should_fire(kind: str, **context) -> Optional[FaultSpec]:
    """Consume and return a matching spec, or ``None``.

    The hot-path cost with no plan installed is one global read and one
    ``None`` check, so instrumented sites can call this unconditionally.
    """
    plan = _ACTIVE if _ENV_LOADED else get_plan()
    if plan is None:
        return None
    spec = plan.first_matching(kind, context)
    if spec is None:
        return None
    spec.fired += 1
    return spec
