"""Robustness subsystem: deterministic fault injection, the execution
watchdog, and crash-artifact bookkeeping.

Long CFTCG campaigns must survive hostile conditions — nonterminating
generated code (``while`` loops in MATLAB-function bodies), dying or
hanging worker processes, corrupt compile-cache entries, trace-file IO
errors.  Each of those failure modes is handled by a hardened execution
path elsewhere in the stack; this package supplies the pieces they share:

* :mod:`repro.faults.plan` — a deterministic fault-injection API.  A
  :class:`FaultPlan` (parsed from the ``REPRO_FAULTS`` environment
  variable or built programmatically) is installed process-locally with
  :func:`install`; instrumented sites ask :func:`should_fire` whether to
  simulate their failure.  Every fault fires a bounded number of times at
  a deterministic site, so each recovery path is exactly reproducible in
  tests and in the CI fault matrix.
* :mod:`repro.faults.watchdog` — the per-execution step budget that
  converts an infinite generated loop into a typed
  :class:`~repro.errors.WatchdogTimeout` instead of a stuck campaign.
* :mod:`repro.faults.crashes` — LibFuzzer-style crash artifacts: inputs
  that hung (or crashed) generated code, deduplicated by the stack hash
  of the failure point and persisted to a crash directory.
"""

from .crashes import CrashArtifact, CrashStore, stack_hash
from .plan import (
    FAULT_KINDS,
    FaultPlan,
    FaultSpec,
    clear,
    fault_scope,
    get_plan,
    install,
    parse_faults,
    plan_from_env,
    should_fire,
)
from .watchdog import WATCHDOG, Watchdog

__all__ = [
    "FAULT_KINDS",
    "FaultPlan",
    "FaultSpec",
    "CrashArtifact",
    "CrashStore",
    "stack_hash",
    "Watchdog",
    "WATCHDOG",
    "clear",
    "fault_scope",
    "get_plan",
    "install",
    "parse_faults",
    "plan_from_env",
    "should_fire",
]
