"""Container-aware CPU core detection.

``os.cpu_count()`` reports the machine, not the container: a CI runner
pinned to 2 cores of a 64-core host would oversubscribe 32x if worker
or thread counts defaulted to it.  :func:`available_cpus` is the one
shared answer to "how many cores may this process actually use" —
scheduler affinity (``os.sched_getaffinity``) intersected with the
cgroup CPU quota (v2 ``cpu.max`` or v1 ``cfs_quota_us/cfs_period_us``),
overridable with ``REPRO_CPUS`` for tests and benchmarks.

:func:`resolve_kernel_threads` turns ``FuzzerConfig.kernel_threads``
(``int | "auto" | None``) into a concrete thread count, dividing the
available cores by the campaign's worker count so threads x workers
never oversubscribes the container.
"""

from __future__ import annotations

import os
from typing import Optional, Union

__all__ = ["available_cpus", "resolve_kernel_threads"]

_CGROUP_V2_MAX = "/sys/fs/cgroup/cpu.max"
_CGROUP_V1_QUOTA = "/sys/fs/cgroup/cpu/cpu.cfs_quota_us"
_CGROUP_V1_PERIOD = "/sys/fs/cgroup/cpu/cpu.cfs_period_us"


def _affinity_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _read_int(path: str) -> Optional[int]:
    try:
        with open(path) as fh:
            return int(fh.read().strip())
    except (OSError, ValueError):
        return None


def _cgroup_quota_cpus() -> Optional[int]:
    """Whole cores granted by the cgroup CPU bandwidth quota, or None
    when unlimited/undetectable."""
    try:
        with open(_CGROUP_V2_MAX) as fh:
            parts = fh.read().split()
        if len(parts) >= 2 and parts[0] != "max":
            quota, period = int(parts[0]), int(parts[1])
            if quota > 0 and period > 0:
                return max(1, quota // period)
    except (OSError, ValueError):
        pass
    quota = _read_int(_CGROUP_V1_QUOTA)
    period = _read_int(_CGROUP_V1_PERIOD)
    if quota is not None and period is not None and quota > 0 and period > 0:
        return max(1, quota // period)
    return None


def available_cpus() -> int:
    """Cores this process may actually use (affinity ∩ cgroup quota).

    ``REPRO_CPUS=<n>`` overrides detection entirely — benchmarks and CI
    use it to pin a deterministic answer.
    """
    override = os.environ.get("REPRO_CPUS")
    if override:
        try:
            n = int(override)
        except ValueError:
            n = 0
        if n > 0:
            return n
    cpus = _affinity_cpus()
    quota = _cgroup_quota_cpus()
    if quota is not None:
        cpus = min(cpus, quota)
    return max(1, cpus)


def resolve_kernel_threads(
    threads: Union[int, str, None],
    workers: int = 1,
    lanes: Optional[int] = None,
) -> int:
    """Concrete kernel thread count for one worker process.

    ``"auto"`` (or None) honors ``REPRO_KERNEL_THREADS`` when set (CI
    pins runners with it), else takes the container's available cores
    divided by the campaign's worker count, so a 4-worker campaign on 8
    cores runs 2 kernel threads per worker instead of 8.  Explicit ints
    are honored as given (clamped to >= 1).  When ``lanes`` is known
    the result is additionally clamped to it — more threads than lanes
    would only idle.
    """
    if threads in (None, "auto"):
        env = os.environ.get("REPRO_KERNEL_THREADS")
        n = 0
        if env:
            try:
                n = int(env)
            except ValueError:
                n = 0
        if n < 1:
            n = max(1, available_cpus() // max(1, int(workers or 1)))
    else:
        n = max(1, int(threads))
    if lanes is not None and lanes > 0:
        n = min(n, int(lanes))
    return n
