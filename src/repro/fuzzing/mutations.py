"""Model input mutation strategies (paper §3.2.1, Table 1).

All field-wise strategies keep the byte stream *tuple-aligned*: they
modify typed fields in place or move whole tuples, so every remaining
byte still means what the fuzz driver's ``memcpy`` offsets say it means.
The generic byte-level strategies (used by the "Fuzz Only" ablation) do
not respect alignment — deletions and insertions shift every later field,
the data-misalignment failure mode the paper describes.

Every strategy is a pure function ``(data, layout, rng) -> bytes``
(cross-over additionally takes the second parent).
"""

from __future__ import annotations

import struct
from typing import Callable, List, Optional, Tuple

from ..parser.inport_info import TupleLayout

__all__ = [
    "MUTATION_STRATEGIES",
    "GENERIC_STRATEGIES",
    "mutate_field_wise",
    "mutate_generic",
    "change_binary_integer",
    "change_binary_float",
    "erase_tuples",
    "insert_tuple",
    "insert_repeated_tuples",
    "shuffle_tuples",
    "copy_tuples",
    "tuples_cross_over",
]

_INTERESTING_INTS = (
    0, 1, -1, 2, 3, 4, 5, 6, 7, 8, 10, 16, 20, 32, 50, 64, 100, 127, 128,
    200, 255, 256, 500, 1000, -2, -5, -10, -100, -1000,
)
_INTERESTING_FLOATS = (0.0, 1.0, -1.0, 0.5, 2.0, 100.0, 1e6, -1e6, 1e-6)


def _n_tuples(data: bytes, layout: TupleLayout) -> int:
    return len(data) // layout.size


def _random_tuple(layout: TupleLayout, rng) -> bytes:
    """Random field values; range-declared fields sample inside the range."""
    parts = []
    for field in layout.fields:
        if field.vrange is not None:
            low, high = field.vrange
            if field.dtype.is_float:
                value = rng.uniform(low, high)
            else:
                value = rng.randint(int(low), int(high))
            parts.append(field.dtype.pack(value))
        else:
            parts.append(bytes(rng.randrange(256) for _ in range(field.size)))
    return b"".join(parts)


def _clamp_field_in_place(buf: bytearray, base: int, field) -> None:
    """Re-clamp one just-mutated field into its declared range (§5)."""
    if field.vrange is None:
        return
    value = field.dtype.unpack(bytes(buf[base : base + field.size]))
    clamped = field.clamp(value)
    if clamped != value:
        buf[base : base + field.size] = field.dtype.pack(clamped)


def _pick_field(layout: TupleLayout, rng, want: str) -> Optional[object]:
    """A random field of the wanted kind ('int' or 'float'), if any."""
    if want == "float":
        candidates = [f for f in layout.fields if f.dtype.is_float]
    else:
        candidates = [f for f in layout.fields if not f.dtype.is_float]
    if not candidates:
        return None
    return rng.choice(candidates)


# ---------------------------------------------------------------------- #
# field-wise strategies (Table 1)
# ---------------------------------------------------------------------- #
def change_binary_integer(data: bytes, layout: TupleLayout, rng) -> bytes:
    """Modify one integer/boolean field inside one tuple.

    Sub-strategies per the paper: sign-bit change, byte swap, bit flip,
    byte modification, add/subtract small values, random change.
    """
    count = _n_tuples(data, layout)
    if count == 0:
        return data
    field = _pick_field(layout, rng, "int")
    if field is None:
        return data
    buf = bytearray(data)
    base = rng.randrange(count) * layout.size + field.offset
    size = field.size
    # weighted mode choice: value-shaping modes (add/sub, interesting,
    # small-magnitude) carry most of the probability mass — thresholds in
    # control logic live at small magnitudes, not random 32-bit points
    mode = rng.choice((0, 1, 2, 3, 4, 4, 4, 5, 5, 5, 6, 6, 6, 6, 7))
    if mode == 0:  # sign bit (top bit of the little-endian value)
        buf[base + size - 1] ^= 0x80
    elif mode == 1:  # byte swap
        buf[base : base + size] = bytes(reversed(buf[base : base + size]))
    elif mode == 2:  # bit flip
        bit = rng.randrange(size * 8)
        buf[base + bit // 8] ^= 1 << (bit % 8)
    elif mode == 3:  # byte modification
        buf[base + rng.randrange(size)] = rng.randrange(256)
    elif mode == 4:  # add / subtract a small value
        raw = int.from_bytes(buf[base : base + size], "little")
        raw = (raw + rng.choice((-16, -8, -4, -2, -1, 1, 2, 4, 8, 16))) % (
            1 << (8 * size)
        )
        buf[base : base + size] = raw.to_bytes(size, "little")
    elif mode == 5:  # interesting value
        raw = rng.choice(_INTERESTING_INTS) % (1 << (8 * size))
        buf[base : base + size] = int(raw).to_bytes(size, "little")
    elif mode == 6:  # small-magnitude value (hits IDs, opcodes, windows)
        # log-uniform magnitude: half the mass below 16, most below 4096
        span = rng.choice((8, 16, 64, 256, 1024, 4096))
        raw = rng.randint(-span, span) % (1 << (8 * size))
        buf[base : base + size] = int(raw).to_bytes(size, "little")
    else:  # fully random value
        raw = rng.getrandbits(8 * size)
        buf[base : base + size] = int(raw).to_bytes(size, "little")
    _clamp_field_in_place(buf, base, field)
    return bytes(buf)


def change_binary_float(data: bytes, layout: TupleLayout, rng) -> bytes:
    """Modify one float field, exploiting the IEEE-754 memory format."""
    count = _n_tuples(data, layout)
    if count == 0:
        return data
    field = _pick_field(layout, rng, "float")
    if field is None:
        return data
    buf = bytearray(data)
    base = rng.randrange(count) * layout.size + field.offset
    size = field.size
    fmt = "<f" if size == 4 else "<d"
    mode = rng.randrange(5)
    if mode == 0:  # sign bit
        buf[base + size - 1] ^= 0x80
    elif mode == 1:  # exponent tweak (top byte below the sign bit)
        buf[base + size - 1] ^= 1 << rng.randrange(7)
    elif mode == 2:  # mantissa tweak
        buf[base + rng.randrange(size - 1)] ^= 1 << rng.randrange(8)
    elif mode == 3:  # interesting value
        struct.pack_into(fmt, buf, base, rng.choice(_INTERESTING_FLOATS))
    else:  # scale by a power of two
        try:
            value = struct.unpack_from(fmt, buf, base)[0]
        except struct.error:  # pragma: no cover - defensive
            _clamp_field_in_place(buf, base, field)
            return bytes(buf)
        if value != value or value in (float("inf"), float("-inf")):
            value = 1.0
        scaled = value * (2.0 ** rng.choice((-4, -2, -1, 1, 2, 4)))
        if abs(scaled) > 1e30:
            scaled = rng.choice(_INTERESTING_FLOATS)
        struct.pack_into(fmt, buf, base, scaled)
    _clamp_field_in_place(buf, base, field)
    return bytes(buf)


def erase_tuples(data: bytes, layout: TupleLayout, rng) -> bytes:
    """Remove a contiguous range of tuples."""
    count = _n_tuples(data, layout)
    if count <= 1:
        return data
    start = rng.randrange(count)
    length = 1 + rng.randrange(min(count - start, max(count // 2, 1)))
    size = layout.size
    return data[: start * size] + data[(start + length) * size :]


def insert_tuple(data: bytes, layout: TupleLayout, rng) -> bytes:
    """Insert one new tuple with random field values."""
    count = _n_tuples(data, layout)
    pos = rng.randrange(count + 1) * layout.size
    return data[:pos] + _random_tuple(layout, rng) + data[pos:]


def insert_repeated_tuples(data: bytes, layout: TupleLayout, rng) -> bytes:
    """Insert a run of identical tuples (drives counters and dwell states)."""
    count = _n_tuples(data, layout)
    pos = rng.randrange(count + 1) * layout.size
    if count and rng.random() < 0.5:
        # repeat an existing tuple — holds the current plant condition
        src = rng.randrange(count) * layout.size
        unit = data[src : src + layout.size]
    else:
        unit = _random_tuple(layout, rng)
    repeats = 2 + rng.randrange(14)
    return data[:pos] + unit * repeats + data[pos:]


def shuffle_tuples(data: bytes, layout: TupleLayout, rng) -> bytes:
    """Shuffle the order of a range of tuples."""
    count = _n_tuples(data, layout)
    if count <= 1:
        return data
    size = layout.size
    tuples = [data[i * size : (i + 1) * size] for i in range(count)]
    start = rng.randrange(count - 1)
    end = start + 2 + rng.randrange(count - start - 1)
    window = tuples[start:end]
    rng.shuffle(window)
    tuples[start:end] = window
    return b"".join(tuples) + data[count * size :]


def copy_tuples(data: bytes, layout: TupleLayout, rng) -> bytes:
    """Copy a range of tuples into another position."""
    count = _n_tuples(data, layout)
    if count == 0:
        return data
    size = layout.size
    start = rng.randrange(count)
    length = 1 + rng.randrange(min(count - start, max(count // 2, 1)))
    chunk = data[start * size : (start + length) * size]
    pos = rng.randrange(count + 1) * size
    return data[:pos] + chunk + data[pos:]


def tuples_cross_over(data: bytes, layout: TupleLayout, rng, other: bytes) -> bytes:
    """Combine tuple-aligned pieces of two streams."""
    size = layout.size
    n_a = _n_tuples(data, layout)
    n_b = _n_tuples(other, layout)
    if n_a == 0:
        return other
    if n_b == 0:
        return data
    cut_a = rng.randrange(n_a + 1)
    cut_b = rng.randrange(n_b + 1)
    if rng.random() < 0.5:
        return data[: cut_a * size] + other[cut_b * size :]
    # interleave alternating runs
    out: List[bytes] = []
    ia = ib = 0
    take_a = True
    while ia < n_a or ib < n_b:
        run = 1 + rng.randrange(4)
        if take_a and ia < n_a:
            out.append(data[ia * size : min(ia + run, n_a) * size])
            ia += run
        elif ib < n_b:
            out.append(other[ib * size : min(ib + run, n_b) * size])
            ib += run
        else:
            ia = n_a
            ib = n_b
        take_a = not take_a
    return b"".join(out)


#: (name, callable, needs_second_parent) — the paper's Table 1
MUTATION_STRATEGIES: Tuple[Tuple[str, Callable, bool], ...] = (
    ("change_binary_integer", change_binary_integer, False),
    ("change_binary_float", change_binary_float, False),
    ("erase_tuples", erase_tuples, False),
    ("insert_tuple", insert_tuple, False),
    ("insert_repeated_tuples", insert_repeated_tuples, False),
    ("shuffle_tuples", shuffle_tuples, False),
    ("copy_tuples", copy_tuples, False),
    ("tuples_cross_over", tuples_cross_over, True),
)

#: selection weights: field-value mutations dominate (they flip branch
#: predicates); structural tuple moves are rarer, like LibFuzzer's mix
_STRATEGY_WEIGHTS = (5, 3, 1, 1, 2, 1, 1, 1)
_WEIGHTED_INDICES = tuple(
    idx for idx, w in enumerate(_STRATEGY_WEIGHTS) for _ in range(w)
)


def mutate_field_wise(
    data: bytes, layout: TupleLayout, rng, other: Optional[bytes] = None,
    rounds: int = 1, max_len: int = 1 << 16,
    ops_out: Optional[List[str]] = None,
) -> bytes:
    """Apply 1..rounds random field-wise strategies (weighted mix).

    ``ops_out``, when given a list, receives the name of every applied
    strategy — pure observation for the telemetry operator-effectiveness
    attribution; it never touches the RNG stream, so mutated bytes are
    identical with or without it.
    """
    for _ in range(max(rounds, 1)):
        name, strategy, needs_other = MUTATION_STRATEGIES[
            rng.choice(_WEIGHTED_INDICES)
        ]
        if ops_out is not None:
            ops_out.append(name)
        if needs_other:
            data = strategy(data, layout, rng, other if other is not None else data)
        else:
            data = strategy(data, layout, rng)
        if len(data) > max_len:
            data = data[: (max_len // layout.size) * layout.size]
    return data


# ---------------------------------------------------------------------- #
# generic byte-level strategies (the "Fuzz Only" ablation)
# ---------------------------------------------------------------------- #
def _bit_flip(data: bytes, rng) -> bytes:
    if not data:
        return data
    buf = bytearray(data)
    bit = rng.randrange(len(buf) * 8)
    buf[bit // 8] ^= 1 << (bit % 8)
    return bytes(buf)


def _byte_replace(data: bytes, rng) -> bytes:
    if not data:
        return data
    buf = bytearray(data)
    buf[rng.randrange(len(buf))] = rng.randrange(256)
    return bytes(buf)


def _byte_insert(data: bytes, rng) -> bytes:
    pos = rng.randrange(len(data) + 1)
    chunk = bytes(rng.randrange(256) for _ in range(1 + rng.randrange(8)))
    return data[:pos] + chunk + data[pos:]


def _byte_erase(data: bytes, rng) -> bytes:
    if len(data) <= 1:
        return data
    pos = rng.randrange(len(data))
    length = 1 + rng.randrange(min(8, len(data) - pos))
    return data[:pos] + data[pos + length :]


def _byte_cross_over(data: bytes, rng, other: bytes) -> bytes:
    if not data:
        return other
    if not other:
        return data
    return data[: rng.randrange(len(data) + 1)] + other[rng.randrange(len(other)) :]


GENERIC_STRATEGIES = (
    ("bit_flip", _bit_flip, False),
    ("byte_replace", _byte_replace, False),
    ("byte_insert", _byte_insert, False),
    ("byte_erase", _byte_erase, False),
    ("byte_cross_over", _byte_cross_over, True),
)


def mutate_generic(
    data: bytes, rng, other: Optional[bytes] = None,
    rounds: int = 1, max_len: int = 1 << 16,
    ops_out: Optional[List[str]] = None,
) -> bytes:
    """Apply 1..rounds generic (alignment-oblivious) byte mutations."""
    for _ in range(max(rounds, 1)):
        name, strategy, needs_other = GENERIC_STRATEGIES[
            rng.randrange(len(GENERIC_STRATEGIES))
        ]
        if ops_out is not None:
            ops_out.append(name)
        if needs_other:
            data = strategy(data, rng, other if other is not None else data)
        else:
            data = strategy(data, rng)
        if len(data) > max_len:
            data = data[:max_len]
    return data
