"""Hybrid constraint-assisted fuzzing (the paper's §5/§6 future work).

The paper's discussion notes that fuzzing struggles with *correlated
inport constraints* and proposes "first apply constraint solving to the
branches in the model to obtain the constraints between ports and then
generate input data accordingly".  This module implements that plan as an
alternation:

1. run the CFTCG fuzzing loop for a chunk of the budget;
2. when coverage plateaus, hand the still-missed decision outcomes to
   the bounded-horizon constraint-directed solver (the SLDV substrate);
3. inject the solver's satisfying inputs as corpus seeds and resume
   fuzzing — the mutator then explores *around* the solved constraints.

The combined suite is replayed on instrumented code like every other
generator, so hybrid results are directly comparable in the tables.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..baselines.sldv import SldvConfig, SldvGenerator
from ..codegen.compile import CompiledModel, compile_model
from ..schedule.schedule import Schedule
from ..telemetry.core import NULL, Telemetry, get_telemetry, telemetry_scope
from .engine import Fuzzer, FuzzerConfig, FuzzResult, replay_suite
from .testcase import TestCase, TestSuite

__all__ = ["HybridConfig", "HybridFuzzer"]


@dataclass
class HybridConfig:
    """Budget split for the fuzz/solve alternation."""

    max_seconds: float = 10.0
    seed: int = 0
    chunk_seconds: float = 2.0  # fuzzing slice between plateau checks
    solver_seconds: float = 1.0  # solving slice per plateau
    solver_horizon: int = 6
    max_solver_targets: int = 24  # cap per solving slice


class HybridFuzzer:
    """Fuzzing with constraint-solving escalation on plateaus."""

    def __init__(
        self,
        schedule: Schedule,
        config: Optional[HybridConfig] = None,
        compiled: Optional[CompiledModel] = None,
        telemetry: Optional[Telemetry] = None,
    ):
        self.schedule = schedule
        self.config = config or HybridConfig()
        tel = telemetry if telemetry is not None else get_telemetry()
        if tel is NULL:
            tel = Telemetry(enabled=False)
        self.telemetry = tel
        with telemetry_scope(tel):
            self.compiled: CompiledModel = (
                compiled or compile_model(schedule, "model")
            )

    # ------------------------------------------------------------------ #
    def _missed_targets(self, report) -> List[Tuple[int, int]]:
        """(decision_id, outcome_idx) pairs not yet covered by the suite."""
        missed_labels = set(report.missed_decisions)
        targets = []
        for decision in self.schedule.branch_db.decisions:
            for idx, outcome in enumerate(decision.outcomes):
                label = "%s:%s=%s" % (decision.block_path, decision.label, outcome)
                if label in missed_labels:
                    targets.append((decision.id, idx))
        return targets

    def run(self) -> FuzzResult:
        config = self.config
        tel = self.telemetry
        suite = TestSuite(tool="cftcg+solver")
        timeline: List = []
        inputs_executed = 0
        iterations_executed = 0
        start = time.perf_counter()
        deadline = start + config.max_seconds
        if tel.enabled:
            tel.emit(
                "campaign_start",
                model=self.schedule.model.name,
                seed=config.seed,
                workers=1,
                n_probes=self.schedule.branch_db.n_probes,
                level="model",
                mode="hybrid",
            )

        seeds: List[bytes] = []
        previous_covered = -1
        round_index = 0
        while time.perf_counter() < deadline:
            remaining = deadline - time.perf_counter()
            chunk = min(config.chunk_seconds, remaining)
            if chunk <= 0.05:
                break
            fuzz_config = FuzzerConfig(
                max_seconds=chunk,
                seed=config.seed + round_index,
                seeds=seeds[-64:],
            )
            # the chunk fuzzers stay telemetry-quiet: the hybrid loop owns
            # the trace narrative (rounds, plateaus, escalations), and
            # per-chunk campaign_start/end events would drown it
            with tel.phase("mutate_exec"):
                result = Fuzzer(
                    self.schedule,
                    fuzz_config,
                    compiled=self.compiled,
                    telemetry=Telemetry(enabled=False),
                ).run()
            offset = time.perf_counter() - start - result.elapsed
            for case in result.suite:
                suite.add(TestCase(case.data, case.found_at + offset, "hybrid"))
            inputs_executed += result.inputs_executed
            iterations_executed += result.iterations_executed
            round_index += 1

            with tel.phase("replay"):
                report = replay_suite(
                    self.schedule, suite, compiled=self.compiled
                )
            covered = report.decision_covered
            timeline.append((time.perf_counter() - start, covered))
            plateaued = covered <= previous_covered
            previous_covered = covered
            seeds = [case.data for case in result.suite]
            if tel.enabled:
                tel.emit(
                    "hybrid_round",
                    round=round_index,
                    t=round(time.perf_counter() - start, 6),
                    covered=covered,
                    plateaued=plateaued,
                )

            if plateaued and time.perf_counter() < deadline:
                targets = self._missed_targets(report)[: config.max_solver_targets]
                if not targets:
                    break  # everything covered
                solver_budget = min(
                    config.solver_seconds, deadline - time.perf_counter()
                )
                solver = SldvGenerator(
                    self.schedule,
                    SldvConfig(
                        max_seconds=solver_budget,
                        seed=config.seed + round_index,
                        horizon=config.solver_horizon,
                        targets=targets,
                    ),
                )
                with tel.phase("solve"):
                    solved = solver.run()
                now = time.perf_counter() - start
                for case in solved.suite:
                    seeds.append(case.data)
                    suite.add(TestCase(case.data, now, "hybrid-solver"))
                inputs_executed += solved.inputs_executed
                iterations_executed += solved.iterations_executed
                if tel.enabled:
                    tel.emit(
                        "solver_escalation",
                        round=round_index,
                        t=round(now, 6),
                        targets=len(targets),
                        solved=len(solved.suite),
                    )

        elapsed = time.perf_counter() - start
        with tel.phase("replay"):
            report = replay_suite(self.schedule, suite, compiled=self.compiled)
        if tel.enabled:
            tel.emit(
                "campaign_end",
                t=round(elapsed, 6),
                execs=inputs_executed,
                iterations=iterations_executed,
                covered=report.probe_covered,
                decision=round(report.decision, 3),
                condition=round(report.condition, 3),
                mcdc=round(report.mcdc, 3),
                cases=len(suite),
                phases={k: round(v, 6) for k, v in tel.phase_times.items()},
            )
            tel.flush()
        return FuzzResult(
            suite=suite,
            report=report,
            inputs_executed=inputs_executed,
            iterations_executed=iterations_executed,
            elapsed=elapsed,
            timeline=timeline,
            phase_times=dict(tel.phase_times),
        )
