"""The model-oriented fuzzing loop (paper Fig. 2, right column).

Pipeline per run: compile the instrumented model code, compile the
generated fuzz driver, then loop — select a corpus parent, apply
field-wise tuple mutations, execute the driver (Algorithm 1), emit test
cases on new model coverage, keep high-Iteration-Difference inputs as
seeds.  Deterministic under a fixed ``seed``.

Ablation knobs (all used by the paper's experiments):

* ``field_aware=False`` — generic byte-level mutation (misaligns fields);
* ``level="code"`` — code-level-only instrumentation for guidance
  (boolean dataflow invisible, like a stock compiler + LibFuzzer);
* ``use_iteration_metric=False`` — corpus admits only new-coverage
  inputs, disabling the IDC diversification.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from random import Random
from typing import List, Optional

from ..codegen.compile import CompiledModel, compile_model
from ..codegen.driver import compile_fuzz_driver
from ..coverage.metrics import CoverageReport, compute_report
from ..coverage.recorder import CoverageRecorder
from ..errors import FuzzingError
from ..schedule.schedule import Schedule
from .corpus import Corpus, CorpusEntry
from .mutations import mutate_field_wise, mutate_generic
from .testcase import TestCase, TestSuite

__all__ = ["FuzzerConfig", "FuzzResult", "Fuzzer", "replay_suite"]


@dataclass
class FuzzerConfig:
    """Tuning knobs for one fuzzing run."""

    max_seconds: float = 5.0
    max_inputs: Optional[int] = None
    seed: int = 0
    max_len: int = 1024  # byte-stream cap (LibFuzzer's -max_len)
    initial_tuples: int = 4
    max_mutation_rounds: int = 4
    corpus_size: int = 256
    use_iteration_metric: bool = True
    field_aware: bool = True
    level: str = "model"
    #: stop early once every probe is covered (saves benchmark time)
    stop_on_full_coverage: bool = True
    #: extra initial corpus inputs (byte streams), e.g. solver-produced
    #: seeds from the hybrid constraint-assisted mode (paper §5/§6)
    seeds: Optional[List[bytes]] = None


@dataclass
class FuzzResult:
    """Everything one run produced."""

    suite: TestSuite
    report: CoverageReport
    inputs_executed: int
    iterations_executed: int
    elapsed: float
    timeline: List = field(default_factory=list)  # (t, probes_covered)

    @property
    def execs_per_second(self) -> float:
        return self.inputs_executed / self.elapsed if self.elapsed else 0.0

    @property
    def iterations_per_second(self) -> float:
        return self.iterations_executed / self.elapsed if self.elapsed else 0.0


class Fuzzer:
    """CFTCG's generation engine for one model."""

    def __init__(
        self,
        schedule: Schedule,
        config: Optional[FuzzerConfig] = None,
        compiled: Optional[CompiledModel] = None,
    ):
        self.schedule = schedule
        self.config = config or FuzzerConfig()
        if self.config.level not in ("model", "code"):
            raise FuzzingError("fuzzer level must be 'model' or 'code'")
        self.compiled = compiled or compile_model(schedule, self.config.level)
        if self.compiled.level != self.config.level:
            raise FuzzingError(
                "compiled model level %r does not match config %r"
                % (self.compiled.level, self.config.level)
            )
        if not schedule.layout.fields:
            raise FuzzingError(
                "model %r has no inports; nothing to fuzz"
                % (schedule.model.name,)
            )
        self.driver = compile_fuzz_driver(schedule)
        self.layout = schedule.layout

    # ------------------------------------------------------------------ #
    def _seed_inputs(self, rng: Random) -> List[bytes]:
        """Initial corpus: zeros, random streams, and structured tuples.

        The structured seeds set every integer field to one interesting
        magnitude and every boolean to 1 — cheap starting points near the
        thresholds control logic actually uses.
        """
        layout = self.layout
        size = layout.size
        n = self.config.initial_tuples
        seeds = [bytes(size * n)]
        for _ in range(4):
            seeds.append(bytes(rng.randrange(256) for _ in range(size * n)))
        for magnitude in (1, 10, 100, 1000, -1, -100):
            row = []
            for f in layout.fields:
                if f.dtype.is_bool:
                    row.append(1)
                elif f.dtype.is_float:
                    row.append(f.clamp(float(magnitude)))
                else:
                    row.append(f.clamp(magnitude))
            seeds.append(layout.pack_stream([tuple(row)] * n))
        if self.config.seeds:
            seeds.extend(self.config.seeds)
        return seeds

    def run(self) -> FuzzResult:
        """Execute the fuzzing loop; returns suite + replayed coverage."""
        config = self.config
        rng = Random(config.seed)
        corpus = Corpus(config.corpus_size)
        suite = TestSuite(tool="cftcg")
        recorder = CoverageRecorder(self.schedule.branch_db)
        program, _ = self.compiled.instantiate(recorder)
        driver = self.driver

        total_int = 0
        inputs_executed = 0
        iterations_executed = 0
        timeline: List = []
        start = time.perf_counter()
        deadline = start + config.max_seconds
        # each probe is one byte in the bitmap, so "all covered" is the
        # little-endian integer over n_probes 0x01 bytes
        n_probes = self.schedule.branch_db.n_probes
        full = int.from_bytes(b"\x01" * n_probes, "little") if n_probes else 0

        def run_one(data: bytes, parent_density: float) -> None:
            nonlocal total_int, inputs_executed, iterations_executed
            metric, found_new, total_int, iters = driver(
                program, recorder.curr, data, total_int
            )
            inputs_executed += 1
            iterations_executed += iters
            now = time.perf_counter() - start
            if found_new:
                suite.add(TestCase(data, now))
                timeline.append((now, bin(total_int).count("1")))
                corpus.add(CorpusEntry(data, metric, True, now, iterations=iters))
            elif config.use_iteration_metric:
                density = metric / (iters + 1.0)
                if density > parent_density:
                    corpus.add(
                        CorpusEntry(data, metric, False, now, iterations=iters)
                    )

        for seed_data in self._seed_inputs(rng):
            run_one(seed_data, -1.0)

        while True:
            if time.perf_counter() >= deadline:
                break
            if config.max_inputs is not None and inputs_executed >= config.max_inputs:
                break
            if config.stop_on_full_coverage and full and total_int == full:
                break
            parent = corpus.select(rng)
            if parent is None:
                data = bytes(
                    rng.randrange(256)
                    for _ in range(self.layout.size * config.initial_tuples)
                )
                parent_density = -1.0
            else:
                other = corpus.select(rng)
                rounds = 1 + rng.randrange(config.max_mutation_rounds)
                if config.field_aware:
                    data = mutate_field_wise(
                        parent.data,
                        self.layout,
                        rng,
                        other=other.data if other else None,
                        rounds=rounds,
                        max_len=config.max_len,
                    )
                else:
                    data = mutate_generic(
                        parent.data,
                        rng,
                        other=other.data if other else None,
                        rounds=rounds,
                        max_len=config.max_len,
                    )
                parent_density = parent.density
            run_one(data, parent_density)

        elapsed = time.perf_counter() - start
        report = replay_suite(self.schedule, suite)
        return FuzzResult(
            suite=suite,
            report=report,
            inputs_executed=inputs_executed,
            iterations_executed=iterations_executed,
            elapsed=elapsed,
            timeline=timeline,
        )


def replay_suite(
    schedule: Schedule,
    suite: TestSuite,
    compiled: Optional[CompiledModel] = None,
    recorder: Optional[CoverageRecorder] = None,
) -> CoverageReport:
    """Measure a suite's coverage by replaying it on instrumented code.

    This is the paper's fair-comparison method: every tool's output test
    cases are replayed against the *fully* instrumented model (the
    Simulink coverage toolbox stand-in), regardless of what guidance the
    tool itself used.
    """
    compiled = compiled or compile_model(schedule, "model")
    if compiled.level != "model":
        raise FuzzingError("replay requires a model-level compiled program")
    recorder = recorder or CoverageRecorder(schedule.branch_db)
    program, _ = compiled.instantiate(recorder)
    layout = schedule.layout
    for case in suite:
        program.init()
        for fields in layout.iter_tuples(case.data):
            recorder.reset_curr()
            program.step(*fields)
            recorder.commit_curr()
    return compute_report(recorder)
