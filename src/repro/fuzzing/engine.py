"""The model-oriented fuzzing loop (paper Fig. 2, right column).

Pipeline per run: compile the instrumented model code, compile the
generated fuzz driver, then loop — select a corpus parent, apply
field-wise tuple mutations, execute the driver (Algorithm 1), emit test
cases on new model coverage, keep high-Iteration-Difference inputs as
seeds.  Deterministic under a fixed ``seed``.

Ablation knobs (all used by the paper's experiments):

* ``field_aware=False`` — generic byte-level mutation (misaligns fields);
* ``level="code"`` — code-level-only instrumentation for guidance
  (boolean dataflow invisible, like a stock compiler + LibFuzzer);
* ``use_iteration_metric=False`` — corpus admits only new-coverage
  inputs, disabling the IDC diversification.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from random import Random
from typing import Dict, List, Optional

from ..bits import popcount
from ..codegen.compile import CompiledModel, compile_model
from ..codegen.driver import compile_fuzz_driver
from ..coverage.metrics import CoverageReport, compute_report
from ..coverage.recorder import CoverageRecorder
from ..cpu import resolve_kernel_threads
from ..errors import FuzzingError, WatchdogTimeout
from ..faults.crashes import CrashStore
from ..faults.watchdog import WATCHDOG
from ..schedule.schedule import Schedule
from ..telemetry.core import NULL, Telemetry, get_telemetry, telemetry_scope
from ..telemetry.metrics import LADDER_POSITIONS
from ..telemetry.stats import StatusPrinter
from .corpus import Corpus, CorpusEntry
from .mutations import mutate_field_wise, mutate_generic
from .testcase import TestCase, TestSuite

__all__ = ["FuzzerConfig", "FuzzResult", "FuzzState", "Fuzzer", "replay_suite"]

#: multiplier decorrelating the per-slice RNG streams of resumed runs
_SLICE_SEED_STRIDE = 0x9E3779B1

#: seconds without new coverage before a ``plateau`` trace event fires
_PLATEAU_SECONDS = 2.0

#: telemetry tick: uninteresting execs skip all trace-side bookkeeping
#: between ticks, keeping the enabled hot path within the overhead budget
_TICK_SECONDS = 0.1


@dataclass
class FuzzerConfig:
    """Tuning knobs for one fuzzing run."""

    max_seconds: float = 5.0
    max_inputs: Optional[int] = None
    seed: int = 0
    max_len: int = 1024  # byte-stream cap (LibFuzzer's -max_len)
    initial_tuples: int = 4
    max_mutation_rounds: int = 4
    corpus_size: int = 256
    use_iteration_metric: bool = True
    field_aware: bool = True
    level: str = "model"
    #: stop early once every probe is covered (saves benchmark time)
    stop_on_full_coverage: bool = True
    #: extra initial corpus inputs (byte streams), e.g. solver-produced
    #: seeds from the hybrid constraint-assisted mode (paper §5/§6)
    seeds: Optional[List[bytes]] = None
    #: campaign parallelism (LibFuzzer's -workers); 1 = the classic
    #: single-process loop, >1 is handled by :mod:`repro.fuzzing.parallel`
    workers: int = 1
    #: corpus-merge sync epochs in a multi-worker campaign
    sync_rounds: int = 4
    #: per-input step budget for generated code (while-loop iterations);
    #: ``None`` disables the watchdog and a nonterminating loop hangs the
    #: campaign.  Step counts, not wall time, so the abort point is
    #: deterministic across machines and engines.
    max_exec_steps: Optional[int] = None
    #: directory where crash/timeout artifacts persist (LibFuzzer's
    #: ``-artifact_prefix``); ``None`` keeps artifacts in memory only
    crash_dir: Optional[str] = None
    #: parallel supervision: seconds without a worker heartbeat before
    #: the worker is declared hung and its slice re-dispatched
    worker_timeout: float = 30.0
    #: parallel supervision: respawn budget per worker slot per campaign
    max_respawns: int = 3
    #: lane-parallel batched execution: step this many inputs in lockstep
    #: through the vectorized generated code (needs numpy; max 64, or 256
    #: on the native kernel backend).  The default of 1 keeps the scalar
    #: engine — byte-identical suites with zero new dependencies; >1
    #: trades per-input sequencing granularity for throughput (suites may
    #: differ from the scalar engine only in corpus-scheduling order,
    #: never in per-input semantics).  ``"auto"`` picks per model: the
    #: native kernel at 64 lanes when a C compiler is available, else the
    #: vectorized engine — unless its op census predicts it would lose to
    #: scalar (see :func:`repro.codegen.batch.predict_batch_speedup`), in
    #: which case the scalar engine is kept
    lanes: object = 1
    #: native kernel backend policy: ``"auto"`` uses the fused C kernel
    #: whenever lanes > 1 and it is buildable, degrading to the numpy
    #: batch engine and then scalar (each fallback emits a ``fault``
    #: telemetry event, never silent); ``"on"`` requests it even at
    #: ``lanes=1`` (bit-identical to scalar, used by the parity gates);
    #: ``"off"`` never builds it
    kernel: str = "auto"
    #: kernel execution threads per worker: disjoint lane blocks run
    #: concurrently, each on its own C state struct (ctypes releases the
    #: GIL during ``kern_run``).  ``"auto"`` divides the container's
    #: available cores (affinity ∩ cgroup quota, see :mod:`repro.cpu`)
    #: by ``workers`` so threads x workers never oversubscribes; ints
    #: are honored as given.  Suite digests are bit-identical at every
    #: thread count — per-lane results fold sequentially in lane order
    #: regardless of how lanes are partitioned onto threads.
    kernel_threads: object = "auto"


@dataclass
class FuzzState:
    """Resumable campaign state — everything :meth:`Fuzzer.resume` touches.

    The state is a plain picklable value so a parallel campaign can ship
    it to a worker process, run a budget slice, and ship it back for the
    shared-corpus merge.  ``elapsed`` accumulates across slices, keeping
    test-case timestamps and the timeline monotone over a whole campaign.
    """

    corpus: Corpus
    suite: TestSuite
    total_int: int = 0
    inputs_executed: int = 0
    iterations_executed: int = 0
    elapsed: float = 0.0
    timeline: List = field(default_factory=list)  # (t, probes_covered)
    seeded: bool = False  # initial seed inputs already executed?
    rounds: int = 0  # completed resume slices
    timeouts: int = 0  # inputs aborted by the execution watchdog
    corpus_adds: int = 0  # discovery rank counter for corpus_add events
    #: cumulative per-operator mutation counts (telemetry-enabled runs
    #: only; empty otherwise, so pickled payloads stay small)
    op_applied: Dict[str, int] = field(default_factory=dict)
    #: per-operator counts of mutations that produced a corpus-adding
    #: input — the numerator of the operator-effectiveness table
    op_wins: Dict[str, int] = field(default_factory=dict)


@dataclass
class FuzzResult:
    """Everything one run produced."""

    suite: TestSuite
    report: CoverageReport
    inputs_executed: int
    iterations_executed: int
    elapsed: float
    timeline: List = field(default_factory=list)  # (t, probes_covered)
    #: wall-time attribution per pipeline phase (codegen, optimize,
    #: compile, seed, mutate_exec, merge, replay, ...) — populated for
    #: every run; an empty dict only when a caller bypassed the engine
    phase_times: Dict[str, float] = field(default_factory=dict)
    #: inputs aborted by the execution watchdog (each recorded as a
    #: deduplicated timeout artifact in the fuzzer's crash store)
    timeouts: int = 0

    @property
    def execs_per_second(self) -> float:
        return self.inputs_executed / self.elapsed if self.elapsed else 0.0

    @property
    def iterations_per_second(self) -> float:
        return self.iterations_executed / self.elapsed if self.elapsed else 0.0


class Fuzzer:
    """CFTCG's generation engine for one model."""

    def __init__(
        self,
        schedule: Schedule,
        config: Optional[FuzzerConfig] = None,
        compiled: Optional[CompiledModel] = None,
        replay_compiled: Optional[CompiledModel] = None,
        telemetry: Optional[Telemetry] = None,
    ):
        self.schedule = schedule
        self.config = config or FuzzerConfig()
        if self.config.level not in ("model", "code"):
            raise FuzzingError("fuzzer level must be 'model' or 'code'")
        # the per-run telemetry: an explicit argument, else the active
        # scope, else a private disabled registry — never the shared NULL
        # singleton, so phase attribution works even with telemetry off
        tel = telemetry if telemetry is not None else get_telemetry()
        if tel is NULL:
            tel = Telemetry(enabled=False)
        self.telemetry = tel
        with telemetry_scope(tel):
            self.compiled = compiled or compile_model(schedule, self.config.level)
            if self.compiled.level != self.config.level:
                raise FuzzingError(
                    "compiled model level %r does not match config %r"
                    % (self.compiled.level, self.config.level)
                )
            if not schedule.layout.fields:
                raise FuzzingError(
                    "model %r has no inports; nothing to fuzz"
                    % (schedule.model.name,)
                )
            if replay_compiled is not None and replay_compiled.level != "model":
                raise FuzzingError(
                    "replay requires a model-level compiled program"
                )
            self._replay_compiled = replay_compiled
            with tel.phase("compile"):
                self.driver = compile_fuzz_driver(schedule)
        #: batched execution artifacts — populated by :meth:`_setup_batch`
        #: / :meth:`_setup_kernel` (scalar stays the authoritative path)
        self._batch_compiled: Optional[CompiledModel] = None
        self._batch_driver = None
        self._batch_lanes = 1
        self._kernel_compiled = None
        self._kernel_threads = 1
        #: which execution backend resume() will use: "scalar", "batch"
        #: or "kernel" — resolved once here, fallbacks included
        self.engine = "scalar"
        self._setup_engines()
        self.layout = schedule.layout
        #: timeout/crash artifacts found by this fuzzer (disk-backed when
        #: ``config.crash_dir`` is set, in-memory otherwise)
        self.crash_store = CrashStore(self.config.crash_dir)

    def _setup_batch(self, lanes: int) -> None:
        """Compile the lane-parallel variant and its batched fuzz driver.

        Called from ``__init__`` for ``config.lanes > 1``; tests call it
        directly with ``lanes=1`` to prove the batched path reproduces the
        scalar engine's suites byte-for-byte.
        """
        from ..codegen import batch as _batch

        if not 1 <= lanes <= _batch.MAX_LANES:
            raise FuzzingError(
                "config.lanes must be in 1..%d, got %r"
                % (_batch.MAX_LANES, lanes)
            )
        if not _batch.have_numpy():
            raise FuzzingError(
                "config.lanes > 1 requires numpy for the vectorized engine"
            )
        with telemetry_scope(self.telemetry):
            self._batch_compiled = compile_model(
                self.schedule, self.config.level, batch=True
            )
            with self.telemetry.phase("compile"):
                self._batch_driver = _batch.compile_batch_fuzz_driver(
                    self.schedule
                )
        self._batch_lanes = lanes
        self.engine = "batch"

    def _setup_kernel(self, lanes: int) -> None:
        """Build the fused native kernel and its fuzz driver.

        Raises ``Unloweable``/``KernelBuildError`` (no C compiler, build
        failure, un-loweable construct); :meth:`_setup_engines` catches
        those and degrades down the ladder.
        """
        from ..codegen import batch as _batch
        from ..codegen import kernel as _kernel

        if not 1 <= lanes <= _kernel.MAX_KERNEL_LANES:
            raise FuzzingError(
                "config.lanes must be in 1..%d on the kernel backend, got %r"
                % (_kernel.MAX_KERNEL_LANES, lanes)
            )
        kt = self.config.kernel_threads
        if not (
            kt in ("auto", None)
            or (isinstance(kt, int) and not isinstance(kt, bool) and kt >= 1)
        ):
            # config errors must raise even on toolchain-less machines,
            # so validate before the degradable numpy/cc checks below
            raise FuzzingError(
                "config.kernel_threads must be a positive int or 'auto', "
                "got %r" % (kt,)
            )
        if not _batch.have_numpy():
            # the kernel driver marshals byte streams through numpy
            raise _kernel.KernelBuildError(
                "kernel backend requires numpy for input marshalling"
            )
        if not _kernel.have_cc():
            raise _kernel.KernelBuildError(
                "no C compiler on PATH (set $CC or install gcc/clang)"
            )
        with telemetry_scope(self.telemetry):
            self._kernel_compiled = _kernel.compile_kernel(
                self.schedule, self.config.level
            )
            with self.telemetry.phase("compile"):
                self._batch_driver = _kernel.compile_kernel_fuzz_driver(
                    self.schedule
                )
        self._batch_lanes = lanes
        self._kernel_threads = resolve_kernel_threads(
            kt, workers=self.config.workers, lanes=lanes
        )
        self.engine = "kernel"

    def _engine_fault(self, frm: str, to: str, reason: str) -> None:
        """Report one engine-ladder degradation — never silent."""
        tel = self.telemetry
        if tel.enabled:
            tel.emit(
                "fault",
                kind="engine_fallback",
                engine_from=frm,
                engine_to=to,
                reason=reason[:500],
                model=self.schedule.model.name,
            )

    def _auto_lanes(self, kernel_mode: str) -> int:
        """Resolve ``lanes="auto"``: pick the engine that cannot lose.

        The kernel beats scalar by >3x on every benchmarked model, so a
        working C toolchain means 64 lanes.  Without one, the vectorized
        engine only wins when its op census predicts >=1x (EVCS-class
        models expand into enough masked-select dispatches to regress);
        predicted losers stay on the scalar engine.
        """
        from ..codegen import batch as _batch
        from ..codegen import kernel as _kernel
        from ..codegen.compile import _generate_source

        if kernel_mode != "off" and _kernel.have_cc() and _batch.have_numpy():
            return _batch.MAX_LANES
        if not _batch.have_numpy():
            return 1
        with telemetry_scope(self.telemetry):
            ssrc = _generate_source(self.schedule, self.config.level, True, False)
            bsrc = _generate_source(self.schedule, self.config.level, True, True)
        predicted = _batch.predict_batch_speedup(ssrc, bsrc)
        if predicted < 1.0:
            self._engine_fault(
                "batch",
                "scalar",
                "lanes=auto: census predicts %.2fx <1x over scalar" % predicted,
            )
            return 1
        return _batch.MAX_LANES

    def _setup_engines(self) -> None:
        """Resolve config (lanes, kernel) into one execution backend.

        Degradation ladder: kernel -> numpy batch -> scalar.  Every step
        down emits an ``engine_fallback`` fault event; an explicit
        ``kernel="on"`` or ``lanes`` that can't be honored degrades the
        same way rather than failing the campaign.
        """
        from ..codegen import batch as _batch
        from ..codegen import kernel as _kernel

        config = self.config
        kernel_mode = config.kernel
        if kernel_mode not in ("auto", "on", "off"):
            raise FuzzingError(
                "config.kernel must be 'auto', 'on' or 'off', got %r"
                % (kernel_mode,)
            )
        lanes = config.lanes
        auto = lanes == "auto"
        if auto:
            lanes = self._auto_lanes(kernel_mode)
        if not isinstance(lanes, int) or isinstance(lanes, bool) or lanes < 1:
            raise FuzzingError(
                "config.lanes must be a positive int or 'auto', got %r"
                % (config.lanes,)
            )
        if lanes > _kernel.MAX_KERNEL_LANES:
            raise FuzzingError(
                "config.lanes must be <= %d, got %r"
                % (_kernel.MAX_KERNEL_LANES, lanes)
            )
        want_kernel = kernel_mode == "on" or (kernel_mode != "off" and lanes > 1)
        if want_kernel:
            try:
                self._setup_kernel(lanes)
                return
            except (_kernel.Unloweable, _kernel.KernelBuildError) as exc:
                next_to = "batch" if lanes > 1 else "scalar"
                self._engine_fault("kernel", next_to, str(exc))
        if lanes == 1:
            return  # scalar — engine stays "scalar"
        if lanes > _batch.MAX_LANES:
            # a kernel-sized lane count degrading onto the 64-bit bitset
            self._engine_fault(
                "batch",
                "batch",
                "lanes=%d exceeds the vectorized engine's %d-lane bitset; "
                "clamped" % (lanes, _batch.MAX_LANES),
            )
            lanes = _batch.MAX_LANES
        try:
            self._setup_batch(lanes)
        except FuzzingError as exc:
            # no numpy: the ladder ends on the scalar engine
            self._engine_fault("batch", "scalar", str(exc))

    def replay_compiled(self) -> CompiledModel:
        """The cached model-level artifact used for suite replay.

        Reuses the guidance-level compilation when it is already at model
        level, so a run never compiles the same module twice.
        """
        if self._replay_compiled is None:
            if self.compiled.level == "model":
                self._replay_compiled = self.compiled
            else:
                with telemetry_scope(self.telemetry):
                    self._replay_compiled = compile_model(self.schedule, "model")
        return self._replay_compiled

    # ------------------------------------------------------------------ #
    def _seed_inputs(self, rng: Random) -> List[bytes]:
        """Initial corpus: zeros, random streams, and structured tuples.

        The structured seeds set every integer field to one interesting
        magnitude and every boolean to 1 — cheap starting points near the
        thresholds control logic actually uses.
        """
        layout = self.layout
        size = layout.size
        n = self.config.initial_tuples
        seeds = [bytes(size * n)]
        for _ in range(4):
            seeds.append(bytes(rng.randrange(256) for _ in range(size * n)))
        for magnitude in (1, 10, 100, 1000, -1, -100):
            row = []
            for f in layout.fields:
                if f.dtype.is_bool:
                    row.append(1)
                elif f.dtype.is_float:
                    row.append(f.clamp(float(magnitude)))
                else:
                    row.append(f.clamp(magnitude))
            seeds.append(layout.pack_stream([tuple(row)] * n))
        if self.config.seeds:
            seeds.extend(self.config.seeds)
        return seeds

    # ------------------------------------------------------------------ #
    # resumable campaign interface
    # ------------------------------------------------------------------ #
    def new_state(self) -> FuzzState:
        """A fresh campaign state (empty corpus, empty suite)."""
        return FuzzState(
            corpus=Corpus(self.config.corpus_size),
            suite=TestSuite(tool="cftcg"),
        )

    def resume(
        self,
        state: FuzzState,
        max_seconds: Optional[float] = None,
        max_inputs: Optional[int] = None,
        extra_seeds: Optional[List[bytes]] = None,
    ) -> FuzzState:
        """Run one budget slice of the fuzzing loop, mutating ``state``.

        ``max_seconds`` is the wall-clock budget of *this* slice (default:
        the config's full budget); ``max_inputs`` caps the state's total
        executed-input count (default: the config's cap).  ``extra_seeds``
        are byte streams injected before mutation resumes — a parallel
        campaign re-broadcasts the merged seed pool through this hook.
        """
        config = self.config
        if state.rounds == 0:
            rng = Random(config.seed)
        else:
            rng = Random(config.seed + _SLICE_SEED_STRIDE * state.rounds)
        slice_seconds = config.max_seconds if max_seconds is None else max_seconds
        cap = config.max_inputs if max_inputs is None else max_inputs
        corpus = state.corpus
        suite = state.suite
        timeline = state.timeline
        recorder = CoverageRecorder(self.schedule.branch_db)
        bdriver = self._batch_driver
        lanes = self._batch_lanes if bdriver is not None else 1
        if bdriver is None:
            program, _ = self.compiled.instantiate(recorder)
        elif self.engine == "kernel":
            bprogram = self._kernel_compiled.instantiate_kernel(
                lanes, self._kernel_threads
            )
            brecorder = None  # coverage lives inside the native kernel
        else:
            bprogram, brecorder = self._batch_compiled.instantiate_batch(lanes)
        driver = self.driver
        crash_store = self.crash_store
        # the generated driver re-arms the budget per input (_wd_arm);
        # configuring here makes that arm a no-op when no budget is set
        WATCHDOG.configure(config.max_exec_steps)

        # telemetry locals: one `tel_on` check is the entire disabled cost
        tel = self.telemetry
        tel_on = tel.enabled
        printer = (
            StatusPrinter(tel.stats_stream, tel.stats_interval)
            if tel_on and tel.stats_stream is not None
            else None
        )
        if tel_on and state.rounds == 0 and "worker" not in tel.tags:
            tel.emit(
                "campaign_start",
                model=self.schedule.model.name,
                seed=config.seed,
                workers=config.workers,
                n_probes=self.schedule.branch_db.n_probes,
                level=config.level,
            )
        # live-observability locals: the engine gauges the /metrics
        # exporter surfaces plus the shared /status frame, refreshed at
        # most once per telemetry tick (the observe() gate below)
        status = tel.status if tel_on else None
        worker_id = tel.tags.get("worker", 0) if tel_on else 0
        cur_phase = "seed" if not state.seeded else "mutate_exec"
        if tel_on:
            gauge = tel.gauge
            g_rate = gauge("engine.execs_per_s")
            g_iter_rate = gauge("engine.iterations_per_s")
            g_execs = gauge("engine.execs")
            g_corpus = gauge("engine.corpus_size")
            g_covered = gauge("engine.covered_probes")
            g_cov_frac = gauge("engine.coverage_fraction")
            g_plateau = gauge("engine.plateau")
            gauge("engine.lanes").set(lanes)
            gauge("engine.kernel_threads").set(
                self._kernel_threads if self.engine == "kernel" else 1
            )
            gauge("engine.ladder_position").set(
                LADDER_POSITIONS.get(self.engine, 0)
            )
            if status is not None:
                status.update(
                    model=self.schedule.model.name,
                    seed=config.seed,
                    workers=config.workers,
                    n_probes=self.schedule.branch_db.n_probes,
                    engine=self.engine,
                    lanes=lanes,
                    kernel_threads=(
                        self._kernel_threads if self.engine == "kernel" else 1
                    ),
                    phase=cur_phase,
                )
        slice_start_execs = state.inputs_executed
        slice_start_iters = state.iterations_executed
        # coalesced kernel-hot-path spans: per-dispatch/fold durations
        # accumulate here and flush as one aggregated span per tick, so
        # span granularity never costs an event per batch
        kspans = (
            {"dispatch_n": 0, "dispatch_s": 0.0, "fold_n": 0, "fold_s": 0.0}
            if tel_on
            else None
        )

        def flush_kspans() -> None:
            if kspans is None:
                return
            if kspans["dispatch_n"]:
                tel.emit_span(
                    "kernel_dispatch",
                    kspans["dispatch_s"],
                    batches=kspans["dispatch_n"],
                    lanes=lanes,
                )
                kspans["dispatch_n"] = 0
                kspans["dispatch_s"] = 0.0
            if kspans["fold_n"]:
                tel.emit_span(
                    "kernel_fold", kspans["fold_s"], batches=kspans["fold_n"]
                )
                kspans["fold_n"] = 0
                kspans["fold_s"] = 0.0

        offset = state.elapsed
        start = time.perf_counter()
        deadline = start + slice_seconds
        # each probe is one byte in the bitmap, so "all covered" is the
        # little-endian integer over n_probes 0x01 bytes
        n_probes = self.schedule.branch_db.n_probes
        full = int.from_bytes(b"\x01" * n_probes, "little") if n_probes else 0
        # plateau bookkeeping (telemetry-enabled runs only)
        last_new_t = offset
        plateau_reported = False
        next_tick = 0.0  # campaign-time of the next telemetry tick
        next_gauge_t = 0.0  # campaign-time of the next gauge/status refresh
        ops_log: List[str] = []  # batched operator names, flushed per tick

        def flush_ops() -> None:
            """Fold the batched operator log into the cumulative counters."""
            if ops_log:
                applied = state.op_applied
                for op in ops_log:
                    applied[op] = applied.get(op, 0) + 1
                ops_log.clear()

        def observe(found_new, added, evicted, now, ops) -> None:
            """Trace-side bookkeeping for one executed input (tel_on only).

            Called for every *interesting* exec (new coverage, corpus
            change) and otherwise at most once per :data:`_TICK_SECONDS`
            — uninteresting execs between ticks pay only the gate check.
            """
            nonlocal last_new_t, plateau_reported, next_tick, next_gauge_t
            next_tick = now + _TICK_SECONDS
            flush_ops()
            if now >= next_gauge_t:
                # gauge/status refresh is tick-bounded even though observe
                # itself runs for every interesting exec — the live view
                # never costs more than ~10 refreshes/s
                next_gauge_t = now + _TICK_SECONDS
                flush_kspans()
                covered_now = popcount(state.total_int)
                slice_t = max(now - offset, 1e-9)
                g_rate.set(
                    round(
                        (state.inputs_executed - slice_start_execs) / slice_t, 1
                    )
                )
                g_iter_rate.set(
                    round(
                        (state.iterations_executed - slice_start_iters)
                        / slice_t,
                        1,
                    )
                )
                g_execs.set(state.inputs_executed)
                g_corpus.set(len(corpus))
                g_covered.set(covered_now)
                g_cov_frac.set(
                    round(covered_now / n_probes, 6) if n_probes else 0.0
                )
                if status is not None:
                    status.update(
                        phase=cur_phase,
                        execs=state.inputs_executed,
                        covered=covered_now,
                        corpus=len(corpus),
                        cases=len(suite),
                        plateau=plateau_reported and not found_new,
                    )
                    status.worker_update(
                        worker_id,
                        phase=cur_phase,
                        epoch=state.rounds,
                        execs=state.inputs_executed,
                        covered=covered_now,
                        corpus=len(corpus),
                    )
            if found_new:
                last_new_t = now
                plateau_reported = False
                g_plateau.set(0)
                tel.emit(
                    "cov",
                    t=round(now, 6),
                    execs=state.inputs_executed,
                    covered=popcount(state.total_int),
                    bits="%x" % state.total_int,
                )
            if added:
                state.corpus_adds += 1
                if ops:
                    wins = state.op_wins
                    for op in ops:
                        wins[op] = wins.get(op, 0) + 1
                tel.emit(
                    "corpus_add",
                    t=round(now, 6),
                    rank=state.corpus_adds,
                    reason="new_cov" if found_new else "idc",
                    size=len(corpus),
                )
            if evicted is not None:
                tel.emit(
                    "corpus_evict",
                    t=round(now, 6),
                    reason="new_cov" if evicted.found_new else "idc",
                    size=len(corpus),
                )
            if not found_new and not plateau_reported:
                idle = now - last_new_t
                if idle >= _PLATEAU_SECONDS:
                    plateau_reported = True
                    g_plateau.set(1)
                    tel.emit(
                        "plateau",
                        t=round(now, 6),
                        execs=state.inputs_executed,
                        covered=popcount(state.total_int),
                        idle_s=round(idle, 3),
                    )
            if printer is not None:
                printer.maybe_print(
                    state.inputs_executed,
                    popcount(state.total_int),
                    n_probes,
                    len(corpus),
                )

        def absorb_timeout(data: bytes, total_after: int, iters, exc) -> None:
            """Account one watchdog-aborted input (scalar or batched lane).

            Probes the input covered *before* the abort are real coverage:
            they are folded into the campaign bitmap instead of being
            discarded with the exception.  The input itself is never
            emitted as a test case — replay has no watchdog, so a hanging
            stream must stay quarantined in the crash store.
            """
            now = offset + time.perf_counter() - start
            grew = total_after != state.total_int
            state.total_int = total_after
            state.inputs_executed += 1
            state.iterations_executed += iters
            state.timeouts += 1
            if grew:
                timeline.append((now, popcount(total_after)))
            artifact = crash_store.record(
                "timeout",
                data,
                exc,
                found_at=now,
                probes_covered=popcount(total_after),
            )
            if tel_on:
                tel.emit(
                    "crash_artifact",
                    t=round(now, 6),
                    kind=artifact.kind,
                    hash=artifact.hash,
                    count=artifact.count,
                    size=len(data),
                )

        def absorb(
            data: bytes, parent_density: float, ops, metric, found_new,
            total_int, iters,
        ) -> None:
            state.total_int = total_int
            state.inputs_executed += 1
            state.iterations_executed += iters
            now = offset + time.perf_counter() - start
            added = False
            evicted = None
            entry = None
            if found_new:
                suite.add(TestCase(data, now))
                timeline.append((now, popcount(total_int)))
                entry = CorpusEntry(data, metric, True, now, iterations=iters)
            elif config.use_iteration_metric and iters:
                # zero-iteration inputs (shorter than one tuple) executed
                # nothing: their metric is vacuously 0 and admitting them
                # hands the corpus dead weight that mutates into more of
                # the same, so they are never admission candidates
                density = metric / (iters + 1.0)
                if density > parent_density:
                    entry = CorpusEntry(data, metric, False, now, iterations=iters)
            if entry is not None:
                displaced = corpus.add(entry)
                if displaced is not entry:
                    added = True
                    evicted = displaced
                # else: rejected up front — weaker than every resident, so
                # no corpus_add/corpus_evict pair and no rank consumed
            if tel_on:
                if ops:
                    ops_log.extend(ops)
                if found_new or added or evicted is not None or now >= next_tick:
                    observe(found_new, added, evicted, now, ops)

        def run_one(data: bytes, parent_density: float, ops=None) -> None:
            try:
                metric, found_new, total_int, iters = driver(
                    program, recorder.curr, data, state.total_int
                )
            except WatchdogTimeout as exc:
                # LibFuzzer-style timeout crash: record the input as a
                # deduplicated artifact and keep fuzzing — the next input
                # resets the program and re-arms the budget
                WATCHDOG.disarm()
                absorb_timeout(
                    data,
                    getattr(exc, "partial_total_int", state.total_int),
                    getattr(exc, "iterations", 0),
                    exc,
                )
                return
            absorb(data, parent_density, ops, metric, found_new, total_int, iters)

        def absorb_results(items, results) -> None:
            """Absorb one executed batch lane by lane, in list order."""
            for (data, parent_density, ops), res in zip(items, results):
                metric, found_new, total_int, iters, texc = res
                if texc is not None:
                    absorb_timeout(data, total_int, iters, texc)
                else:
                    absorb(
                        data, parent_density, ops, metric, found_new,
                        total_int, iters,
                    )

        # pipelined kernel path: mutation + clamp + column packing of
        # batch N+1 overlaps the native execution of batch N.  Gated on
        # lanes > 1 so the lanes=1 kernel stays byte-identical to the
        # scalar engine (same absorb points), and structurally identical
        # at every thread count (threads=1 still dispatches async) so
        # suites cannot depend on the thread count.
        kstart = getattr(bdriver, "start", None)
        kfinish = getattr(bdriver, "finish", None)
        pipelined = (
            self.engine == "kernel"
            and lanes > 1
            and kstart is not None
            and kfinish is not None
        )
        inflight: List = []  # at most one (items, handle) batch

        def kernel_finish(items, handle):
            """One timed kfinish: wait + per-lane fold, span-accounted."""
            if kspans is None:
                absorb_results(items, kfinish(bprogram, handle, state.total_int))
                return
            t0 = time.perf_counter()
            results = kfinish(bprogram, handle, state.total_int)
            kspans["fold_n"] += 1
            kspans["fold_s"] += time.perf_counter() - t0
            absorb_results(items, results)

        def drain_inflight() -> None:
            while inflight:
                items, handle = inflight.pop(0)
                kernel_finish(items, handle)

        def run_batch(items) -> None:
            """Execute ≤ ``lanes`` inputs in lockstep and absorb each lane.

            ``items`` is a list of ``(data, parent_density, ops)``.  The
            batched driver threads ``total_int`` through the lanes in list
            order, so absorption below reproduces the sequential scalar
            accounting input for input.  On the pipelined kernel path
            the batch is dispatched asynchronously and the *previous*
            batch is absorbed instead — absorption order stays the
            submission order.
            """
            if pipelined:
                if kspans is None:
                    handle = kstart(bprogram, [it[0] for it in items])
                else:
                    t0 = time.perf_counter()
                    handle = kstart(bprogram, [it[0] for it in items])
                    kspans["dispatch_n"] += 1
                    kspans["dispatch_s"] += time.perf_counter() - t0
                prev = inflight[:]
                del inflight[:]
                # snapshot: callers recycle the ``pending`` list in place
                # (``del pending[:]``) right after dispatch, so holding the
                # live reference would absorb the *next* batch's items
                # against this batch's results
                inflight.append((list(items), handle))
                for pitems, phandle in prev:
                    kernel_finish(pitems, phandle)
                return
            if kspans is None:
                results = bdriver(
                    bprogram,
                    brecorder.curr if brecorder is not None else None,
                    [it[0] for it in items],
                    state.total_int,
                )
            else:
                t0 = time.perf_counter()
                results = bdriver(
                    bprogram,
                    brecorder.curr if brecorder is not None else None,
                    [it[0] for it in items],
                    state.total_int,
                )
                kspans["dispatch_n"] += 1
                kspans["dispatch_s"] += time.perf_counter() - t0
            absorb_results(items, results)

        pending: List = []  # batched mode: inputs awaiting a lockstep flush

        def submit(data: bytes, parent_density: float, ops=None) -> None:
            """Run one input — immediately (scalar) or via the lane queue."""
            if bdriver is None:
                run_one(data, parent_density, ops)
                return
            pending.append((data, parent_density, ops))
            if len(pending) >= lanes:
                run_batch(pending)
                del pending[:]

        def flush_pending() -> None:
            if pending:
                run_batch(pending)
                del pending[:]
            drain_inflight()

        def exhausted() -> bool:
            if time.perf_counter() >= deadline:
                return True
            if cap is not None and (
                state.inputs_executed
                + len(pending)
                + sum(len(items) for items, _ in inflight)
            ) >= cap:
                return True
            if config.stop_on_full_coverage and full and state.total_int == full:
                return True
            return False

        if not state.seeded:
            state.seeded = True
            for seed_data in self._seed_inputs(rng):
                if exhausted():
                    break
                submit(seed_data, -1.0)
            flush_pending()
            if tel_on:
                tel.emit(
                    "seed_phase",
                    t=round(offset + time.perf_counter() - start, 6),
                    execs=state.inputs_executed,
                )
        for seed_data in extra_seeds or ():
            if exhausted():
                break
            submit(seed_data, -1.0)
        flush_pending()
        seed_done = time.perf_counter()
        tel.add_phase("seed", seed_done - start)
        if tel_on:
            tel.emit_span(
                "seed",
                seed_done - start,
                execs=state.inputs_executed - slice_start_execs,
            )
        cur_phase = "mutate_exec"

        while not exhausted():
            parent = corpus.select(rng)
            ops: Optional[List[str]] = [] if tel_on else None
            if parent is None:
                data = bytes(
                    rng.randrange(256)
                    for _ in range(self.layout.size * config.initial_tuples)
                )
                parent_density = -1.0
                if ops is not None:
                    ops.append("random_stream")
            else:
                other = corpus.select(rng, bump=False)
                rounds = 1 + rng.randrange(config.max_mutation_rounds)
                if config.field_aware:
                    data = mutate_field_wise(
                        parent.data,
                        self.layout,
                        rng,
                        other=other.data if other else None,
                        rounds=rounds,
                        max_len=config.max_len,
                        ops_out=ops,
                    )
                else:
                    data = mutate_generic(
                        parent.data,
                        rng,
                        other=other.data if other else None,
                        rounds=rounds,
                        max_len=config.max_len,
                        ops_out=ops,
                    )
                parent_density = parent.density
            submit(data, parent_density, ops)
        flush_pending()

        tel.add_phase("mutate_exec", time.perf_counter() - seed_done)
        WATCHDOG.disarm()
        state.elapsed = offset + time.perf_counter() - start
        state.rounds += 1
        if tel_on:
            flush_ops()
            flush_kspans()
            tel.emit_span(
                "mutate_exec",
                time.perf_counter() - seed_done,
                execs=state.inputs_executed - slice_start_execs,
            )
            if self.engine == "kernel":
                slice_s = max(time.perf_counter() - start, 1e-9)
                busy = [round(b, 6) for b in bprogram.block_busy_s]
                tel.emit(
                    "kernel_threads",
                    threads=bprogram.threads,
                    lanes=lanes,
                    dispatches=bprogram.dispatches,
                    block_busy_s=busy,
                    utilization=[round(b / slice_s, 4) for b in busy],
                    stall_s=round(bprogram.stall_s, 6),
                    pipelined=pipelined,
                )
                tel.gauge("engine.pipeline_stall_s").set(
                    round(bprogram.stall_s, 6)
                )
            g_execs.set(state.inputs_executed)
            g_corpus.set(len(corpus))
            g_covered.set(popcount(state.total_int))
            g_cov_frac.set(
                round(popcount(state.total_int) / n_probes, 6) if n_probes else 0.0
            )
            if status is not None:
                status.worker_update(
                    worker_id,
                    phase="idle",
                    epoch=state.rounds,
                    execs=state.inputs_executed,
                    covered=popcount(state.total_int),
                    corpus=len(corpus),
                )
            tel.emit(
                "slice_end",
                t=round(state.elapsed, 6),
                execs=state.inputs_executed,
                iterations=state.iterations_executed,
                corpus=len(corpus),
                covered=popcount(state.total_int),
            )
            tel.emit(
                "mutation_stats",
                applied=state.op_applied,
                wins=state.op_wins,
            )
            tel.flush()
        return state

    def finalize(self, state: FuzzState) -> FuzzResult:
        """Replay the state's suite and package the campaign result."""
        tel = self.telemetry
        with tel.phase("replay"):
            report = replay_suite(
                self.schedule, state.suite, compiled=self.replay_compiled()
            )
        if tel.enabled:
            tel.emit(
                "campaign_end",
                t=round(state.elapsed, 6),
                execs=state.inputs_executed,
                iterations=state.iterations_executed,
                covered=popcount(state.total_int),
                decision=round(report.decision, 3),
                condition=round(report.condition, 3),
                mcdc=round(report.mcdc, 3),
                cases=len(state.suite),
                phases={k: round(v, 6) for k, v in tel.phase_times.items()},
            )
            tel.flush()
        return FuzzResult(
            suite=state.suite,
            report=report,
            inputs_executed=state.inputs_executed,
            iterations_executed=state.iterations_executed,
            elapsed=state.elapsed,
            timeline=state.timeline,
            phase_times=dict(tel.phase_times),
            timeouts=state.timeouts,
        )

    def run(self) -> FuzzResult:
        """Execute the fuzzing loop; returns suite + replayed coverage."""
        tel = self.telemetry
        root = None
        if tel.enabled and tel.active_span is None:
            root = tel.span_begin("campaign")
        state = self.new_state()
        self.resume(state)
        result = self.finalize(state)
        tel.span_end(root)
        return result


def replay_suite(
    schedule: Schedule,
    suite: TestSuite,
    compiled: Optional[CompiledModel] = None,
    recorder: Optional[CoverageRecorder] = None,
    timeline_out: Optional[List] = None,
) -> CoverageReport:
    """Measure a suite's coverage by replaying it on instrumented code.

    This is the paper's fair-comparison method: every tool's output test
    cases are replayed against the *fully* instrumented model (the
    Simulink coverage toolbox stand-in), regardless of what guidance the
    tool itself used.

    ``timeline_out``, when given a list, receives ``(found_at,
    probes_covered)`` points as replay advances through the suite — with a
    time-sorted suite this reconstructs a coverage-versus-time curve from
    scratch, which is how a parallel campaign merges its workers'
    timelines into one global curve.
    """
    compiled = compiled or compile_model(schedule, "model")
    if compiled.level != "model":
        raise FuzzingError("replay requires a model-level compiled program")
    recorder = recorder or CoverageRecorder(schedule.branch_db)
    program, _ = compiled.instantiate(recorder)
    layout = schedule.layout
    covered = recorder.covered_probes()
    for case in suite:
        program.init()
        for fields in layout.iter_tuples(case.data):
            recorder.reset_curr()
            program.step(*fields)
            recorder.commit_curr()
        if timeline_out is not None:
            now_covered = recorder.covered_probes()
            if now_covered > covered:
                covered = now_covered
                timeline_out.append((case.found_at, covered))
    return compute_report(recorder)
