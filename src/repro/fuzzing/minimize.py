"""Test suite minimization and reusable probe-bitmap set cover.

A fuzzing run emits one test case per new-coverage event, so late cases
often subsume early ones.  :func:`minimize_suite` reduces a suite to a
small subset with the *same* replayed coverage — the form a tester would
actually check into a regression suite.

Greedy set cover over probe bitmaps: repeatedly take the case adding the
most uncovered probes (ties: earliest found, then shortest), stop when no
case adds anything.  MCDC vectors ride along with the probe choice; the
result is verified to preserve DC/CC and returned with the original
timestamps.

The two building blocks — :func:`case_bitmap` (accumulated probe bitmap
of one input) and :func:`greedy_cover` (the set-cover loop over arbitrary
payloads) — are exported on their own because the parallel campaign's
coverage-gated corpus merge runs the same algorithm over raw byte
streams instead of :class:`TestCase` objects.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple, TypeVar

from ..bits import popcount
from ..codegen.compile import CompiledModel, compile_model
from ..coverage.recorder import CoverageRecorder
from ..schedule.schedule import Schedule
from .testcase import TestCase, TestSuite

__all__ = ["case_bitmap", "greedy_cover", "minimize_suite"]

T = TypeVar("T")


def case_bitmap(program, recorder, layout, data: bytes) -> int:
    """Accumulated probe bitmap of one case as a little-endian integer."""
    program.init()
    total = 0
    for fields in layout.iter_tuples(data):
        recorder.reset_curr()
        program.step(*fields)
        total |= recorder.curr_as_int()
    return total


def greedy_cover(
    items: List[Tuple[T, int]],
    prefer: Optional[Callable[[T, T], bool]] = None,
) -> List[T]:
    """Greedy set cover over ``(payload, probe_bitmap)`` pairs.

    Repeatedly selects the payload whose bitmap adds the most
    still-uncovered probes; ``prefer(a, b)`` breaks equal-gain ties (true
    when ``a`` should win).  Returns the payloads in selection order,
    stopping once no candidate adds anything.
    """
    covered = 0
    kept: List[T] = []
    remaining = list(items)
    while remaining:
        best_index = -1
        best_gain = 0
        for i, (payload, bitmap) in enumerate(remaining):
            gain = popcount(bitmap & ~covered)
            if gain > best_gain or (
                gain == best_gain
                and gain > 0
                and best_index >= 0
                and prefer is not None
                and prefer(payload, remaining[best_index][0])
            ):
                best_gain = gain
                best_index = i
        if best_gain == 0:
            break
        payload, bitmap = remaining.pop(best_index)
        covered |= bitmap
        kept.append(payload)
    return kept


def minimize_suite(
    schedule: Schedule,
    suite: TestSuite,
    compiled: Optional[CompiledModel] = None,
) -> TestSuite:
    """A probe-coverage-equivalent subset of ``suite`` (greedy set cover)."""
    compiled = compiled or compile_model(schedule, "model")
    recorder = CoverageRecorder(schedule.branch_db)
    program, _ = compiled.instantiate(recorder)
    layout = schedule.layout

    cases: List[Tuple[TestCase, int]] = [
        (case, case_bitmap(program, recorder, layout, case.data))
        for case in suite
    ]
    kept = greedy_cover(cases, prefer=_prefer)
    kept.sort(key=lambda c: c.found_at)
    return TestSuite(kept, tool=suite.tool)


def _prefer(a: TestCase, b: TestCase) -> bool:
    """Tie-break: earlier discovery, then shorter input."""
    return (a.found_at, len(a.data)) < (b.found_at, len(b.data))
