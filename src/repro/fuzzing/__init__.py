"""Model-oriented fuzzing loop (paper §3.2).

A LibFuzzer-style in-process engine specialized for models:

* **Model input mutation** (§3.2.1) — eight field-wise strategies over
  *tuples* (one model iteration's inport data), never misaligning the
  typed byte stream (:mod:`mutations`, Table 1 of the paper).
* **Model coverage collection** (§3.2.2) — Algorithm 1 via the generated
  fuzz driver; inputs covering new probes are emitted as test cases,
  inputs with high Iteration Difference Coverage are kept in the corpus
  (:mod:`corpus`, :mod:`engine`).

The ablation knobs reproduce the paper's "Fuzz Only" configuration:
``FuzzerConfig(field_aware=False, level="code")``.
"""

from .corpus import Corpus, CorpusEntry
from .engine import Fuzzer, FuzzerConfig, FuzzResult, FuzzState, replay_suite
from .hybrid import HybridConfig, HybridFuzzer
from .minimize import case_bitmap, greedy_cover, minimize_suite
from .parallel import ParallelFuzzer, merge_seed_pool, run_campaign
from .mutations import (
    MUTATION_STRATEGIES,
    GENERIC_STRATEGIES,
    mutate_field_wise,
    mutate_generic,
)
from .testcase import TestCase, TestSuite

__all__ = [
    "Corpus",
    "CorpusEntry",
    "Fuzzer",
    "FuzzerConfig",
    "FuzzResult",
    "FuzzState",
    "HybridConfig",
    "HybridFuzzer",
    "ParallelFuzzer",
    "case_bitmap",
    "greedy_cover",
    "merge_seed_pool",
    "minimize_suite",
    "replay_suite",
    "run_campaign",
    "GENERIC_STRATEGIES",
    "MUTATION_STRATEGIES",
    "TestCase",
    "TestSuite",
    "mutate_field_wise",
    "mutate_generic",
]
