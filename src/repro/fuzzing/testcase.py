"""Test case representation and suite persistence.

A test case is one binary input stream (a sequence of inport tuples) plus
the moment it was found — the timestamps drive the paper's Figure 7
coverage-versus-time curves.  Suites persist as one binary file per case
plus an index, and convert to/from CSV via :mod:`repro.csvio` (the
paper's fair-comparison tool for Simulink's coverage toolbox).
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from typing import Iterator, List, Optional

from ..errors import FuzzingError

__all__ = ["TestCase", "TestSuite"]


@dataclass(frozen=True)
class TestCase:
    """One generated test case."""

    data: bytes
    found_at: float  # seconds since generation start
    origin: str = "cftcg"  # generating tool tag

    def n_iterations(self, layout) -> int:
        return len(self.data) // layout.size


class TestSuite:
    """An ordered collection of test cases from one generation run."""

    def __init__(self, cases: Optional[List[TestCase]] = None, tool: str = "cftcg"):
        self.cases: List[TestCase] = list(cases or [])
        self.tool = tool

    def __len__(self) -> int:
        return len(self.cases)

    def __iter__(self) -> Iterator[TestCase]:
        return iter(self.cases)

    def add(self, case: TestCase) -> None:
        self.cases.append(case)

    def sorted_by_time(self) -> List[TestCase]:
        return sorted(self.cases, key=lambda c: c.found_at)

    def digest(self) -> str:
        """SHA-256 over the ordered case byte streams (length-framed).

        Timestamps and origins are excluded deliberately: two campaigns
        that generated the same inputs in the same order have equal
        digests regardless of wall-clock scheduling — the byte-identity
        contract the golden-digest gates (CI, the campaign service)
        assert is exactly this value.
        """
        h = hashlib.sha256()
        for case in self.cases:
            h.update(len(case.data).to_bytes(4, "little"))
            h.update(case.data)
        return h.hexdigest()

    # ------------------------------------------------------------------ #
    # persistence
    # ------------------------------------------------------------------ #
    def save(self, directory: str) -> None:
        """Write one ``case_NNNN.bin`` per case plus ``index.json``."""
        os.makedirs(directory, exist_ok=True)
        index = {"tool": self.tool, "cases": []}
        for i, case in enumerate(self.cases):
            name = "case_%04d.bin" % i
            with open(os.path.join(directory, name), "wb") as handle:
                handle.write(case.data)
            index["cases"].append(
                {"file": name, "found_at": case.found_at, "origin": case.origin}
            )
        with open(os.path.join(directory, "index.json"), "w") as handle:
            json.dump(index, handle, indent=2)

    @classmethod
    def load(cls, directory: str) -> "TestSuite":
        index_path = os.path.join(directory, "index.json")
        if not os.path.exists(index_path):
            raise FuzzingError("no suite index at %r" % (directory,))
        with open(index_path) as handle:
            index = json.load(handle)
        suite = cls(tool=index.get("tool", "unknown"))
        for item in index["cases"]:
            with open(os.path.join(directory, item["file"]), "rb") as handle:
                data = handle.read()
            suite.add(
                TestCase(data, item.get("found_at", 0.0), item.get("origin", "?"))
            )
        return suite
