"""Parallel fuzzing campaigns with shared-corpus synchronisation.

LibFuzzer — the paper's engine — scales one target across cores with
``-workers``/``-jobs`` plus corpus merging; this module is the same idea
for the model fuzzing loop.  A campaign shards one budget across ``N``
worker processes:

1. every worker runs its own :class:`~repro.fuzzing.engine.Fuzzer` slice
   with a distinct derived seed (:func:`derive_worker_seed`), resuming
   its private :class:`~repro.fuzzing.engine.FuzzState` across epochs;
2. at each sync epoch the parent pulls all worker states back, pools the
   corpora and suites, and runs a **coverage-gated merge** — the greedy
   probe-bitmap set cover from :mod:`repro.fuzzing.minimize` — to distill
   a compact seed pool covering the union of worker coverage;
3. the merged pool is re-broadcast: each worker executes it at the start
   of the next epoch, so discoveries propagate without sharing memory;
4. after the last epoch the worker suites are unioned (discovery-rank
   ordered, byte-deduplicated) and replayed **once** on the fully
   instrumented model for the final report and a merged global timeline.

**Supervision.**  Workers are long-lived processes owned by the parent,
fed through per-worker task queues and answering on one shared result
queue.  Each accepted payload is acknowledged with a start-of-slice
heartbeat; a worker that dies (crash, OOM-kill, injected
``worker_death`` fault) or goes silent past its deadline (hung generated
code, injected ``slow_exec``) is detected by the parent, which respawns
the slot — bounded by ``config.max_respawns``, with exponential backoff
— and re-dispatches the *same* payload with injected faults stripped.
Because workers are stateless between epochs (the state travels inside
the payload), the retried slice reproduces the lost work exactly, so a
campaign that survives an injected worker death still produces the
byte-identical merged suite of a fault-free run.  A slot that exhausts
its respawn budget is retired and the campaign continues degraded on the
remaining workers; when every slot is gone the campaign raises
:class:`~repro.errors.CampaignDegradedError`.

``workers=1`` bypasses multiprocessing entirely and is byte-identical to
the classic single-process engine for a fixed seed.  Worker payloads and
states are plain picklable values, so both ``fork`` and ``spawn`` start
methods work (``spawn`` re-imports this module and re-compiles the model
per process through the worker's startup — a warm read of the persistent
compile cache, so per-worker startup no longer pays the codegen cost).
"""

from __future__ import annotations

import multiprocessing
import os
import queue as _queue
import time
from dataclasses import replace
from typing import Dict, List, Optional, Set

from ..bits import popcount
from ..codegen.compile import CompiledModel, compile_model
from ..coverage.recorder import CoverageRecorder
from ..cpu import resolve_kernel_threads
from ..errors import CampaignDegradedError, FuzzingError, TelemetryError
from ..faults.plan import get_plan, install as faults_install
from ..faults.plan import should_fire as faults_should_fire
from ..schedule.schedule import Schedule
from ..telemetry.core import NULL, Telemetry, get_telemetry, telemetry_scope
from ..telemetry.events import read_trace
from .engine import Fuzzer, FuzzerConfig, FuzzResult, FuzzState, replay_suite
from .minimize import case_bitmap, greedy_cover
from .testcase import TestCase, TestSuite

__all__ = [
    "ParallelFuzzer",
    "WorkerPool",
    "derive_worker_seed",
    "merge_seed_pool",
    "run_campaign",
]

#: decorrelates worker RNG streams; large and odd so derived seeds never
#: collide with the slice-stride derivation inside ``Fuzzer.resume``
_WORKER_SEED_STRIDE = 1_000_003

#: exit code of a worker killed by an injected ``worker_death`` fault
_DEATH_EXIT_CODE = 87

#: how long the parent blocks on the result queue between liveness checks
_POLL_SECONDS = 0.05

#: respawn backoff: ``base * 2**(attempt-1)`` seconds, capped
_BACKOFF_BASE = 0.05
_BACKOFF_CAP = 2.0

#: grace period for joining/terminating workers during shutdown
_JOIN_SECONDS = 5.0


def derive_worker_seed(seed: int, worker_index: int) -> int:
    """The deterministic RNG seed of one campaign worker."""
    return seed + _WORKER_SEED_STRIDE * worker_index


def _default_start_method() -> str:
    """Prefer ``fork`` (cheap, no re-import) where the platform has it."""
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


def _worker_trace_path(trace_path: str, worker: int) -> str:
    """The private JSONL file of one campaign worker."""
    return "%s.worker%d" % (trace_path, worker)


def _run_slice(fuzzer: Fuzzer, payload: Dict) -> FuzzState:
    """Run one worker's budget slice; executed inside a worker process."""
    fuzzer.config = payload["config"]
    state = payload["state"]
    if state is None:
        state = fuzzer.new_state()
    trace_path = payload.get("trace_path")
    worker = payload.get("worker", 0)
    epoch = payload.get("epoch", 0)
    if trace_path:
        # a private, append-mode trace per worker per process; the parent
        # absorbs the files into the campaign trace after the last epoch.
        # Span ids get a worker/epoch prefix (collision-free after the
        # absorb) and adopt the campaign root span as parent, so the
        # merged trace folds into one tree
        tel = Telemetry(
            enabled=True,
            trace_path=_worker_trace_path(trace_path, worker),
            tags={"worker": worker},
            append=True,
            span_prefix="w%de%d-" % (worker, epoch),
        )
        tel.span_root = payload.get("parent_span")
    else:
        tel = Telemetry(enabled=False)
    fuzzer.telemetry = tel
    try:
        with tel.span("slice", worker=worker, epoch=epoch):
            fuzzer.resume(
                state,
                max_seconds=payload["max_seconds"],
                max_inputs=payload["max_inputs"],
                extra_seeds=payload["extra_seeds"],
            )
        tel.emit(
            "heartbeat",
            worker=worker,
            epoch=epoch,
            t=round(state.elapsed, 6),
            execs=state.inputs_executed,
            covered=popcount(state.total_int),
            corpus=len(state.corpus),
        )
    finally:
        tel.close()
    return state


def _worker_main(
    schedule: Schedule,
    base_config: FuzzerConfig,
    slot: int,
    gen: int,
    task_q,
    result_q,
) -> None:
    """Entry point of one supervised campaign worker process.

    Long-lived: compiles the model once (a warm compile-cache read), then
    serves epoch payloads from ``task_q`` until it receives ``None``.
    Every accepted payload is acknowledged with a ``("hb", ...)`` message
    *before* the slice runs, so the parent can tell "still fuzzing" from
    "never picked the task up".  Messages carry the spawn generation so
    the parent can discard stragglers from a superseded process.

    Injected faults fire here, right after the acknowledgement — exactly
    where a real crash or hang would bite.  The payload's plan replaces
    any environment-derived plan, which is how a respawned worker
    (payload shipped with ``faults=None``) re-runs clean.
    """
    fuzzer = Fuzzer(schedule, base_config)
    while True:
        payload = task_q.get()
        if payload is None:
            return
        epoch = payload.get("epoch", 0)
        worker = payload.get("worker", slot)
        result_q.put(("hb", slot, gen, epoch, None))
        plan = payload.get("faults")
        faults_install(plan if plan else None)
        spec = faults_should_fire("worker_death", worker=worker, epoch=epoch)
        if spec is not None:
            os._exit(_DEATH_EXIT_CODE)
        spec = faults_should_fire("slow_exec", worker=worker, epoch=epoch)
        if spec is not None:
            time.sleep(spec.param("seconds", 3600.0))
        try:
            state = _run_slice(fuzzer, payload)
        except BaseException as exc:  # noqa: BLE001 - report, don't die
            result_q.put(
                ("err", slot, gen, epoch, "%s: %s" % (type(exc).__name__, exc))
            )
        else:
            result_q.put(("ok", slot, gen, epoch, state))


class WorkerPool:
    """The process-supervision mechanics of a worker fleet, policy-free.

    Owns the multiprocessing context, one shared result queue, and per-
    slot (process, task queue, spawn generation) triples.  Callers keep
    the *policy* — respawn budgets, backoff, retirement, payload retry —
    and borrow the mechanics: :meth:`spawn` (a fresh task queue per
    spawn, so an undelivered payload in a dead worker's queue never
    leaks into the replacement), :meth:`submit`, :meth:`alive`,
    :meth:`reap`, :meth:`poll` (which drops messages from superseded
    spawn generations), and :meth:`shutdown`.

    Both :class:`ParallelFuzzer` (one campaign, the pool lives for the
    campaign) and the campaign service's scheduler (many jobs
    multiplexed over one long-lived pool — *pool lending*) run on this
    class; the message contract is whatever tuple the worker ``main``
    puts on ``result_q``, conventionally
    ``(kind, slot, gen, epoch, body)`` with the spawn generation in
    position 2 so :meth:`poll` can filter stragglers.
    """

    def __init__(
        self,
        size: int,
        main,
        args: tuple = (),
        start_method: Optional[str] = None,
    ):
        if size < 1:
            raise FuzzingError("worker pool size must be >= 1")
        self.size = size
        self._main = main
        self._args = tuple(args)
        self.ctx = multiprocessing.get_context(
            start_method or _default_start_method()
        )
        self.result_q = self.ctx.Queue()
        self.procs: List[Optional[object]] = [None] * size
        self.task_qs: List[Optional[object]] = [None] * size
        #: spawn generation per slot — the stale-message filter
        self.gens: List[int] = [0] * size

    def spawn(self, slot: int) -> None:
        """(Re)start one slot on a fresh task queue and generation."""
        self.gens[slot] += 1
        self.task_qs[slot] = self.ctx.Queue()
        proc = self.ctx.Process(
            target=self._main,
            args=self._args
            + (slot, self.gens[slot], self.task_qs[slot], self.result_q),
            daemon=True,
        )
        proc.start()
        self.procs[slot] = proc

    def spawn_all(self) -> None:
        for slot in range(self.size):
            self.spawn(slot)

    def submit(self, slot: int, payload) -> None:
        """Feed one task to a slot (the slot must have been spawned)."""
        task_q = self.task_qs[slot]
        if task_q is None:
            raise FuzzingError("slot %d has never been spawned" % slot)
        task_q.put(payload)

    def alive(self, slot: int) -> bool:
        proc = self.procs[slot]
        return proc is not None and proc.is_alive()

    def reap(self, slot: int) -> None:
        """Terminate (if needed) and join one slot's process."""
        proc = self.procs[slot]
        if proc is None:
            return
        if proc.is_alive():
            proc.terminate()
        proc.join(_JOIN_SECONDS)

    def poll(self, timeout: float = _POLL_SECONDS):
        """One result-queue message, or ``None`` on timeout/straggler.

        Messages whose spawn generation is not the slot's current one
        come from a superseded process and are dropped (returned as
        ``None``, so the caller's timeout path — liveness and deadline
        checks — runs either way).
        """
        try:
            msg = self.result_q.get(timeout=timeout)
        except _queue.Empty:
            return None
        if msg[2] != self.gens[msg[1]]:
            return None
        return msg

    def shutdown(self) -> None:
        """Stop every worker: ``None`` sentinel to live slots, then reap."""
        for slot in range(self.size):
            task_q = self.task_qs[slot]
            if self.alive(slot) and task_q is not None:
                try:
                    task_q.put(None)
                except (OSError, ValueError):  # pragma: no cover
                    pass
        for slot in range(self.size):
            self.reap(slot)


def merge_seed_pool(
    schedule: Schedule,
    candidates: List[bytes],
    compiled: Optional[CompiledModel] = None,
    max_pool: int = 64,
) -> List[bytes]:
    """Coverage-gated merge of worker corpora into a compact seed pool.

    Greedy probe-bitmap set cover over the deduplicated candidate byte
    streams: the result covers the union of everything the candidates
    cover, preferring shorter inputs on equal gain — LibFuzzer's
    ``-merge=1`` for model probes.
    """
    compiled = compiled or compile_model(schedule, "model")
    recorder = CoverageRecorder(schedule.branch_db)
    program, _ = compiled.instantiate(recorder)
    layout = schedule.layout
    unique = sorted(set(candidates), key=lambda d: (len(d), d))
    items = [(data, case_bitmap(program, recorder, layout, data)) for data in unique]
    kept = greedy_cover(items, prefer=lambda a, b: (len(a), a) < (len(b), b))
    return kept[:max_pool]


class ParallelFuzzer:
    """Multi-worker CFTCG campaign over one model schedule."""

    def __init__(
        self,
        schedule: Schedule,
        config: Optional[FuzzerConfig] = None,
        compiled: Optional[CompiledModel] = None,
        start_method: Optional[str] = None,
        merge_pool_size: int = 64,
        telemetry: Optional[Telemetry] = None,
    ):
        self.schedule = schedule
        self.config = config or FuzzerConfig(workers=2)
        if self.config.workers < 1:
            raise FuzzingError("workers must be >= 1")
        if self.config.sync_rounds < 1:
            raise FuzzingError("sync_rounds must be >= 1")
        if compiled is not None and compiled.level != "model":
            raise FuzzingError("campaign merge requires a model-level artifact")
        self._compiled = compiled
        self.start_method = start_method
        self.merge_pool_size = merge_pool_size
        tel = telemetry if telemetry is not None else get_telemetry()
        if tel is NULL:
            tel = Telemetry(enabled=False)
        self.telemetry = tel

    # ------------------------------------------------------------------ #
    def _worker_caps(self) -> List[Optional[int]]:
        """Total max-input share of each worker (None = unbounded)."""
        config = self.config
        if config.max_inputs is None:
            return [None] * config.workers
        base, rem = divmod(config.max_inputs, config.workers)
        return [base + (1 if i < rem else 0) for i in range(config.workers)]

    def _unlink_quietly(self, path: str) -> None:
        """Remove a stale/absorbed worker trace; record failures as faults."""
        try:
            os.unlink(path)
        except FileNotFoundError:
            pass  # a worker that found nothing never opened its trace
        except OSError as exc:
            tel = self.telemetry
            if tel.enabled:
                tel.emit(
                    "fault",
                    kind="trace_io_error",
                    op="unlink",
                    path=path,
                    error=str(exc),
                )

    def run(self) -> FuzzResult:
        config = self.config
        if config.workers == 1:
            # the classic path: byte-identical single-process behavior
            return Fuzzer(
                self.schedule,
                config,
                replay_compiled=self._compiled,
                telemetry=self.telemetry,
            ).run()

        tel = self.telemetry
        trace_path = tel.trace_path if tel.enabled else None
        # one campaign root span unless a caller (the CLI) already opened
        # it; workers adopt whichever id is active as their span parent
        root = (
            tel.span_begin("campaign")
            if tel.enabled and tel.active_span is None
            else None
        )
        parent_span = tel.active_span if tel.enabled else None
        status = tel.status if tel.enabled else None
        with telemetry_scope(tel):
            compiled = self._compiled or compile_model(self.schedule, "model")
        if tel.enabled:
            tel.emit(
                "campaign_start",
                model=self.schedule.model.name,
                seed=config.seed,
                workers=config.workers,
                n_probes=self.schedule.branch_db.n_probes,
                level=config.level,
            )
            tel.gauge("campaign.workers_live").set(config.workers)
            tel.gauge("campaign.sync_epoch").set(0)
            if status is not None:
                status.update(
                    model=self.schedule.model.name,
                    seed=config.seed,
                    workers=config.workers,
                    n_probes=self.schedule.branch_db.n_probes,
                    engine="parallel",
                    phase="fuzz",
                    epoch=0,
                )
        if trace_path:
            for w in range(config.workers):
                # clear stale per-worker files (they open in append mode)
                self._unlink_quietly(_worker_trace_path(trace_path, w))
        workers = config.workers
        rounds = config.sync_rounds
        epoch_seconds = config.max_seconds / rounds
        worker_totals = self._worker_caps()
        n_probes = self.schedule.branch_db.n_probes
        full = int.from_bytes(b"\x01" * n_probes, "little") if n_probes else 0
        # a slot is declared hung when its slice overruns the epoch budget
        # by more than the configured grace period
        grace = epoch_seconds + max(config.worker_timeout, 2 * _POLL_SECONDS)
        # the parent's fault plan: injected worker faults ship inside the
        # epoch payloads (and are stripped from respawn payloads), so a
        # retried slice reproduces the lost work without re-faulting
        plan = get_plan()
        shipped = plan.for_kinds("worker_death", "slow_exec") if plan else None

        # resolve kernel_threads="auto" against the *real* worker count
        # before the workers=1 replace below: each worker process would
        # otherwise see workers=1 and claim every available core for its
        # kernel thread pool, oversubscribing threads x workers
        kernel_threads = config.kernel_threads
        if kernel_threads in ("auto", None):
            kernel_threads = resolve_kernel_threads(
                "auto", workers=config.workers
            )
        base_config = replace(
            config, workers=1, kernel_threads=kernel_threads
        )
        states: List[Optional[FuzzState]] = [None] * workers
        merged_seeds: List[bytes] = []
        start = time.perf_counter()

        pool = WorkerPool(
            workers,
            _worker_main,
            args=(self.schedule, base_config),
            start_method=self.start_method,
        )
        respawns = [0] * workers
        live: Set[int] = set(range(workers))
        pending: Set[int] = set()
        deadlines: Dict[int, float] = {}
        payloads: Dict[int, Dict] = {}

        def handle_failure(slot: int, epoch: int, reason: str) -> None:
            """A worker died, hung or errored: respawn or retire the slot."""
            respawns[slot] += 1
            if tel.enabled:
                tel.emit(
                    "fault",
                    kind="worker_failure",
                    worker=slot,
                    epoch=epoch,
                    error=reason,
                )
            pool.reap(slot)
            if respawns[slot] > config.max_respawns:
                # graceful degradation: keep the slot's last completed
                # state, carry on with the surviving workers
                live.discard(slot)
                pending.discard(slot)
                deadlines.pop(slot, None)
                if tel.enabled:
                    tel.emit(
                        "worker_dead", worker=slot, epoch=epoch, reason=reason
                    )
                    tel.emit("degraded", workers_left=len(live))
                    tel.gauge("campaign.workers_live").set(len(live))
                if status is not None:
                    status.worker_update(
                        slot, heartbeat=False, phase="dead", respawns=respawns[slot]
                    )
                if not live:
                    raise CampaignDegradedError(
                        "all %d campaign workers died beyond their respawn "
                        "budget (last failure: worker %d, epoch %d, %s)"
                        % (workers, slot, epoch, reason)
                    )
                return
            backoff = min(
                _BACKOFF_BASE * (2 ** (respawns[slot] - 1)), _BACKOFF_CAP
            )
            if tel.enabled:
                tel.emit(
                    "worker_respawn",
                    worker=slot,
                    epoch=epoch,
                    attempt=respawns[slot],
                    backoff_s=round(backoff, 3),
                )
            if status is not None:
                status.worker_update(
                    slot,
                    heartbeat=False,
                    phase="respawning",
                    respawns=respawns[slot],
                )
            time.sleep(backoff)
            # re-dispatch the SAME payload with injected faults stripped:
            # the respawned worker reproduces the lost slice exactly
            retry = dict(payloads[slot])
            retry["faults"] = None
            payloads[slot] = retry
            pool.spawn(slot)
            pool.submit(slot, retry)
            deadlines[slot] = time.monotonic() + grace

        pool.spawn_all()
        try:
            for epoch in range(rounds):
                pending.clear()
                deadlines.clear()
                for w in sorted(live):
                    cap = worker_totals[w]
                    if cap is not None:
                        # cumulative share: the cap applies to the
                        # state's total, so scale it with the epoch
                        cap = cap * (epoch + 1) // rounds
                    payloads[w] = {
                        "config": replace(
                            base_config,
                            seed=derive_worker_seed(config.seed, w),
                        ),
                        "state": states[w],
                        "max_seconds": epoch_seconds,
                        "max_inputs": cap,
                        "extra_seeds": merged_seeds,
                        "trace_path": trace_path,
                        "worker": w,
                        "epoch": epoch,
                        "faults": shipped,
                        "parent_span": parent_span,
                    }
                    pool.submit(w, payloads[w])
                    deadlines[w] = time.monotonic() + grace
                    pending.add(w)
                    if status is not None:
                        status.worker_update(
                            w, heartbeat=False, phase="dispatched", epoch=epoch
                        )
                while pending:
                    msg = pool.poll()
                    if msg is None:
                        now = time.monotonic()
                        for w in sorted(pending):
                            if not pool.alive(w):
                                handle_failure(w, epoch, "worker process died")
                            elif now > deadlines.get(w, now):
                                handle_failure(
                                    w,
                                    epoch,
                                    "no result within %.1fs (hung)" % grace,
                                )
                        continue
                    kind, w, _gen, ep, body = msg
                    if ep != epoch or w not in pending:
                        continue  # straggler from a superseded dispatch
                    if kind == "hb":
                        deadlines[w] = time.monotonic() + grace
                        if status is not None:
                            status.worker_update(w, phase="running", epoch=ep)
                    elif kind == "ok":
                        states[w] = body
                        pending.discard(w)
                        deadlines.pop(w, None)
                        if status is not None:
                            status.worker_update(
                                w,
                                phase="idle",
                                epoch=ep,
                                execs=body.inputs_executed,
                                covered=popcount(body.total_int),
                                corpus=len(body.corpus),
                            )
                    elif kind == "err":
                        handle_failure(w, epoch, body)
                union_int = 0
                for state in states:
                    if state is not None:
                        union_int |= state.total_int
                if tel.enabled:
                    epoch_execs = sum(
                        s.inputs_executed for s in states if s is not None
                    )
                    tel.emit(
                        "sync_epoch",
                        epoch=epoch,
                        union_covered=popcount(union_int),
                        pool=len(merged_seeds),
                        execs=epoch_execs,
                    )
                    tel.gauge("campaign.sync_epoch").set(epoch)
                    tel.gauge("campaign.union_covered").set(popcount(union_int))
                    tel.gauge("campaign.workers_live").set(len(live))
                    if status is not None:
                        status.update(
                            epoch=epoch,
                            covered=popcount(union_int),
                            execs=epoch_execs,
                            pool=len(merged_seeds),
                            workers_live=len(live),
                        )
                if config.stop_on_full_coverage and full and union_int == full:
                    break
                if epoch < rounds - 1:
                    candidates: List[bytes] = []
                    for state in states:
                        if state is None:
                            continue
                        candidates.extend(e.data for e in state.corpus.entries)
                        candidates.extend(c.data for c in state.suite)
                    with tel.phase("merge"):
                        merged_seeds = merge_seed_pool(
                            self.schedule,
                            candidates,
                            compiled=compiled,
                            max_pool=self.merge_pool_size,
                        )
        finally:
            pool.shutdown()

        # union the worker suites, byte-deduplicated.  Ordering is by
        # *discovery rank* (n-th case of each worker, workers round-robin)
        # rather than wall-clock found_at: ranks are deterministic for a
        # fixed seed and input budget, where timestamps carry scheduling
        # noise that would reorder the merged suite between identical runs
        tagged = [
            (rank, w, case)
            for w, state in enumerate(states)
            if state is not None
            for rank, case in enumerate(state.suite)
        ]
        tagged.sort(key=lambda item: (item[0], item[1]))
        suite = TestSuite(tool="cftcg")
        seen = set()
        for _rank, _w, case in tagged:
            if case.data in seen:
                continue
            seen.add(case.data)
            suite.add(TestCase(case.data, case.found_at, case.origin))

        timeline: List = []
        if status is not None:
            status.update(phase="replay")
        with tel.phase("replay"):
            report = replay_suite(
                self.schedule, suite, compiled=compiled, timeline_out=timeline
            )
        # rank order tracks wall-clock only approximately, so clamp the
        # merged curve into its monotone envelope ("coverage reached C
        # by time T") before handing it out
        for idx in range(1, len(timeline)):
            if timeline[idx][0] < timeline[idx - 1][0]:
                timeline[idx] = (timeline[idx - 1][0], timeline[idx][1])
        elapsed = time.perf_counter() - start
        alive_states = [s for s in states if s is not None]
        inputs_executed = sum(s.inputs_executed for s in alive_states)
        iterations_executed = sum(s.iterations_executed for s in alive_states)
        timeouts = sum(s.timeouts for s in alive_states)
        if tel.enabled:
            union_int = 0
            for state in alive_states:
                union_int |= state.total_int
            tel.emit(
                "campaign_end",
                t=round(elapsed, 6),
                execs=inputs_executed,
                iterations=iterations_executed,
                covered=popcount(union_int),
                decision=round(report.decision, 3),
                condition=round(report.condition, 3),
                mcdc=round(report.mcdc, 3),
                cases=len(suite),
                phases={k: round(v, 6) for k, v in tel.phase_times.items()},
            )
            if trace_path:
                # fold the workers' private traces into the campaign trace
                # (the parent's writer stays open — no file juggling)
                for w in range(workers):
                    worker_path = _worker_trace_path(trace_path, w)
                    try:
                        tel.absorb(read_trace(worker_path))
                    except TelemetryError as exc:
                        # a worker that found nothing never opened its
                        # trace — but record the skip instead of hiding it
                        tel.emit(
                            "fault",
                            kind="trace_io_error",
                            op="read",
                            path=worker_path,
                            error=str(exc),
                        )
                        continue
                    self._unlink_quietly(worker_path)
            tel.span_end(root)
            tel.gauge("campaign.union_covered").set(popcount(union_int))
            if status is not None:
                status.update(
                    phase="done",
                    covered=popcount(union_int),
                    execs=inputs_executed,
                    cases=len(suite),
                )
            tel.flush()
        return FuzzResult(
            suite=suite,
            report=report,
            inputs_executed=inputs_executed,
            iterations_executed=iterations_executed,
            elapsed=elapsed,
            timeline=timeline,
            phase_times=dict(tel.phase_times),
            timeouts=timeouts,
        )


def run_campaign(
    schedule: Schedule,
    config: Optional[FuzzerConfig] = None,
    compiled: Optional[CompiledModel] = None,
    start_method: Optional[str] = None,
    telemetry: Optional[Telemetry] = None,
) -> FuzzResult:
    """Route a campaign by ``config.workers``: 1 = classic engine, N>1 =
    the multiprocessing campaign.  ``compiled`` is an optional cached
    model-level artifact reused for merge and replay.  ``telemetry``
    overrides the active process-local registry for this campaign."""
    config = config or FuzzerConfig()
    if config.workers < 1:
        raise FuzzingError("workers must be >= 1")
    if config.workers == 1:
        main = compiled if (compiled is not None and compiled.level == config.level) else None
        return Fuzzer(
            schedule, config, compiled=main, replay_compiled=compiled,
            telemetry=telemetry,
        ).run()
    return ParallelFuzzer(
        schedule, config, compiled=compiled, start_method=start_method,
        telemetry=telemetry,
    ).run()
