"""The fuzzer corpus: interesting inputs and seed selection.

Admission policy per the paper: inputs that trigger *new model coverage*
always enter the corpus (and are emitted as test cases by the engine);
inputs whose **Iteration Difference Coverage** exceeds their parent's are
kept as interesting seeds for further mutation — this is what diversifies
execution paths across iterations instead of lingering on a few main
paths.

Selection is metric-weighted: higher-IDC entries are proportionally more
likely parents, with a freshness bonus for recently added entries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

__all__ = ["CorpusEntry", "Corpus"]


@dataclass
class CorpusEntry:
    """One corpus input with its bookkeeping."""

    data: bytes
    metric: int
    found_new: bool
    added_at: float
    iterations: int = 0
    selections: int = 0

    @property
    def density(self) -> float:
        """Iteration-difference metric per executed tuple.

        Weighting selection by density (not raw metric) keeps the corpus
        from drifting toward ever-longer inputs, which would inflate the
        metric without diversifying behaviour — the analogue of
        LibFuzzer's preference for small inputs.
        """
        return self.metric / (self.iterations + 1.0)


class Corpus:
    """Bounded set of interesting inputs with weighted selection."""

    def __init__(self, max_entries: int = 256):
        self.max_entries = max_entries
        self.entries: List[CorpusEntry] = []

    def __len__(self) -> int:
        return len(self.entries)

    @staticmethod
    def _strength(entry: CorpusEntry):
        return (entry.found_new, entry.metric, -entry.selections)

    def add(self, entry: CorpusEntry) -> Optional[CorpusEntry]:
        """Admit an entry, evicting the weakest seed when full.

        New-coverage finders are never evicted before metric-only entries;
        within a class, lowest metric goes first.  An entry strictly weaker
        than everything resident is *rejected up front* rather than added
        and immediately evicted — it was never selectable, so admitting it
        would emit a bogus ``corpus_add``/``corpus_evict`` telemetry pair
        and corrupt discovery ranks.  Returns the displaced entry: ``None``
        (admitted, nobody evicted), a resident entry (admitted, weakest
        resident evicted), or ``entry`` itself (rejected).
        """
        if len(self.entries) >= self.max_entries:
            victim = min(self.entries, key=self._strength)
            if self._strength(entry) < self._strength(victim):
                return entry  # rejected: weaker than every resident seed
            self.entries.remove(victim)
            self.entries.append(entry)
            return victim
        self.entries.append(entry)
        return None

    def select(self, rng, bump: bool = True) -> Optional[CorpusEntry]:
        """Pick a parent: metric-proportional with recency preference.

        ``bump=False`` leaves the entry's ``selections`` counter untouched —
        use it for auxiliary picks (e.g. crossover partners) so they don't
        look hotter than they are to the eviction policy in :meth:`add`.
        """
        if not self.entries:
            return None
        # favor the freshest quarter half the time (LibFuzzer-ish energy)
        if len(self.entries) >= 8 and rng.random() < 0.5:
            fresh = self.entries[-max(len(self.entries) // 4, 1):]
            pool = fresh
        else:
            pool = self.entries
        def weight(entry):
            # new-coverage finders get double energy, like LibFuzzer's
            # feature-rarity bias toward inputs that actually advanced
            # the frontier
            bonus = 2.0 if entry.found_new else 1.0
            return (entry.density + 1.0) * bonus

        total = sum(weight(e) for e in pool)
        pick = rng.random() * total
        acc = 0.0
        chosen = pool[-1]
        for entry in pool:
            acc += weight(entry)
            if pick <= acc:
                chosen = entry
                break
        if bump:
            chosen.selections += 1
        return chosen

    def best_metric(self) -> int:
        return max((e.metric for e in self.entries), default=0)
