from setuptools import setup, find_packages

setup(
    name="repro",
    version="1.0.0",
    description=(
        "CFTCG reproduction: test case generation for Simulink-like "
        "models through code based fuzzing"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy"],
)
