#!/usr/bin/env python
"""Extension demo: constraint-assisted fuzzing (the paper's §5 future work).

Builds a model with a *correlated inport constraint* — a branch that only
unlocks when ``key == code * 7 + 13`` holds for three consecutive
samples. Pure fuzzing rarely aligns two fields like that; the hybrid mode
hands the missed branch to the bounded constraint solver and fuzzes on
from its seeds.

Run:  python examples/hybrid_constraints.py
"""

from repro import ModelBuilder, convert
from repro.fuzzing import Fuzzer, FuzzerConfig, HybridConfig, HybridFuzzer


def build_model():
    b = ModelBuilder("vault")
    key = b.inport("key", "int32")
    code = b.inport("code", "int16")
    attempt = b.inport("attempt", "int8")

    lock = b.block(
        "MatlabFunction",
        "Lock",
        inputs=["key", "code", "try_"],
        outputs=[("state", "int8"), ("alarm", "int8")],
        persistent={"streak": ("int8", 0), "fails": ("int16", 0)},
        body=(
            "if try_ > 0\n"
            "  if key == code * 7 + 13 && code > 500\n"  # correlated constraint
            "    streak = streak + 1\n"
            "  else\n"
            "    streak = 0\n"
            "    fails = fails + 1\n"
            "  end\n"
            "end\n"
            "state = 0\n"
            "if streak >= 3\n"
            "  state = 1\n"                      # unlocked: deep branch
            "end\n"
            "alarm = 0\n"
            "if fails >= 20\n"
            "  alarm = 1\n"
            "end\n"
        ),
    )(key, code, attempt)
    state, alarm = lock
    b.outport("state", state)
    b.outport("alarm", alarm)
    return convert(b.build())


def main():
    schedule = build_model()
    budget = 6.0

    plain = Fuzzer(schedule, FuzzerConfig(max_seconds=budget, seed=1)).run()
    print("plain CFTCG :", plain.report)
    print("  missed    :", plain.report.missed_decisions or "none")

    hybrid = HybridFuzzer(
        schedule,
        HybridConfig(
            max_seconds=budget, chunk_seconds=1.0, solver_seconds=1.5, seed=1
        ),
    ).run()
    print("hybrid      :", hybrid.report)
    print("  missed    :", hybrid.report.missed_decisions or "none")
    solver_cases = [c for c in hybrid.suite if c.origin == "hybrid-solver"]
    print("  solver contributed %d seed test case(s)" % len(solver_cases))


if __name__ == "__main__":
    main()
