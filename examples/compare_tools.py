#!/usr/bin/env python
"""Head-to-head tool comparison on any benchmark model.

Runs SLDV-like, SimCoTest-like, CFTCG and the Fuzz-Only ablation on one
model under an equal budget, prints the Table-3-style row plus the
coverage-versus-time series (Figure 7 style), and saves each tool's test
suite as CSV files next to this script.

Run:  python examples/compare_tools.py [model] [seconds]
      python examples/compare_tools.py TWC 10
"""

import os
import sys

from repro.bench import build_schedule, model_names
from repro.csvio import suite_to_csv_dir
from repro.experiments.fig7 import coverage_timeline
from repro.experiments.report import format_series, format_table
from repro.experiments.runner import run_tool


def main():
    model = sys.argv[1] if len(sys.argv) > 1 else "EVCS"
    budget = float(sys.argv[2]) if len(sys.argv) > 2 else 6.0
    if model not in model_names():
        raise SystemExit("unknown model %r; have %s" % (model, model_names()))

    schedule = build_schedule(model)
    out_dir = os.path.join(os.path.dirname(__file__), "suites_%s" % model.lower())

    rows = []
    curves = {}
    for tool in ("sldv", "simcotest", "cftcg", "fuzz_only"):
        result = run_tool(tool, schedule, budget, seed=0)
        rows.append(
            [
                tool,
                "%.1f%%" % result.report.decision,
                "%.1f%%" % result.report.condition,
                "%.1f%%" % result.report.mcdc,
                len(result.suite),
                "%.0f" % result.iterations_per_second,
            ]
        )
        curves[tool] = coverage_timeline(schedule, result)
        suite_dir = os.path.join(out_dir, tool)
        suite_to_csv_dir(result.suite, schedule.layout, suite_dir)

    print(
        format_table(
            ["tool", "DC", "CC", "MCDC", "cases", "iters/s"], rows
        )
    )
    print()
    for tool, points in curves.items():
        print(format_series("%s / %s" % (model, tool), points))
        print()
    print("suites written to", out_dir)


if __name__ == "__main__":
    main()
