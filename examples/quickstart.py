#!/usr/bin/env python
"""Quickstart: build a model, generate test cases with CFTCG, inspect them.

Builds a small temperature-limiter controller, runs the full CFTCG
pipeline (schedule conversion -> instrumented code generation -> fuzz
driver -> model-oriented fuzzing), and prints the generated test cases
with their coverage contribution.

Run:  python examples/quickstart.py
"""

from repro import ModelBuilder, convert
from repro.csvio import case_to_csv
from repro.fuzzing import Fuzzer, FuzzerConfig


def build_model():
    """A heater controller: setpoint tracking with an over-temp cutout."""
    b = ModelBuilder("heater")
    setpoint = b.inport("setpoint", "int16")
    temperature = b.inport("temperature", "int16")
    enable = b.inport("enable", "boolean")

    error = b.block("Sum", "Error", signs="+-")(setpoint, temperature)
    banded = b.block("DeadZone", "Band", start=-2, end=2)(error)
    drive = b.block("Saturation", "DriveLimit", lower=0, upper=100)(
        b.block("Gain", "Kp", gain=4)(banded)
    )
    overtemp = b.block("CompareToConstant", "OverTemp", op=">", value=95)(temperature)
    safe = b.block("Logical", "SafeToHeat", op="AND", n_in=2)(
        enable, b.block("Not", "NotHot")(overtemp)
    )
    output = b.block("Switch", "OutputGate", criterion="~=0")(
        drive, safe, b.const(0)
    )
    b.outport("heater_drive", output)
    b.outport("cutout", overtemp)
    return b.build()


def main():
    model = build_model()
    print("model: %s (%d blocks)" % (model.name, model.block_count()))

    # Schedule Convert: execution order + branch database
    schedule = convert(model)
    db = schedule.branch_db
    print(
        "branch elements: %d decisions, %d conditions, %d probes"
        % (len(db.decisions), len(db.conditions), db.n_probes)
    )
    print(
        "input tuple: %d bytes  %s"
        % (
            schedule.layout.size,
            [(f.name, f.dtype.name) for f in schedule.layout.fields],
        )
    )

    # Model Oriented Fuzzing Loop
    fuzzer = Fuzzer(schedule, FuzzerConfig(max_seconds=3.0, seed=42))
    result = fuzzer.run()

    print(
        "\nfuzzing: %d inputs, %.0f model iterations/s"
        % (result.inputs_executed, result.iterations_per_second)
    )
    print("coverage:", result.report)
    print("test cases generated: %d" % len(result.suite))

    for i, case in enumerate(result.suite.sorted_by_time()[:3]):
        print("\n--- test case %d (found at %.2fs) ---" % (i, case.found_at))
        print(case_to_csv(case.data, schedule.layout).strip()[:400])

    if result.report.missed_decisions:
        print("\nstill missed:", result.report.missed_decisions[:5])


if __name__ == "__main__":
    main()
