#!/usr/bin/env python
"""Deep-state exploration: fuzzing the TCP handshake controller.

Demonstrates why stateful protocol logic defeats shallow methods: the
ESTABLISHED branch needs a correctly ordered, correctly numbered segment
sequence.  Shows the Iteration Difference Coverage metric at work on a
hand-built handshake versus a flat replay, then lets CFTCG find the deep
states on its own.

Run:  python examples/tcp_protocol.py
"""

from repro import compile_model
from repro.bench import build_schedule
from repro.codegen import compile_fuzz_driver
from repro.fuzzing import Fuzzer, FuzzerConfig

STATE_NAMES = [
    "CLOSED", "LISTEN", "SYN_SENT", "SYN_RCVD", "ESTABLISHED",
    "FIN_WAIT_1", "FIN_WAIT_2", "CLOSE_WAIT", "LAST_ACK", "TIME_WAIT",
]


def main():
    schedule = build_schedule("TCP")
    layout = schedule.layout
    compiled = compile_model(schedule, "model")
    driver = compile_fuzz_driver(schedule)

    # --- a hand-written handshake: open passively, accept SYN, ACK it ---
    handshake = layout.pack_stream(
        [
            # flags, seq, ack, cmd, win
            (0, 0, 0, 2, 8),      # passive open -> LISTEN
            (1, 0, 0, 0, 8),      # SYN          -> SYN_RCVD
            (2, 1, 101, 0, 8),    # ACK in window-> ESTABLISHED
            (4, 2, 102, 0, 8),    # FIN          -> CLOSE_WAIT
            (0, 0, 0, 3, 8),      # close        -> LAST_ACK
            (2, 3, 103, 0, 8),    # final ACK    -> CLOSED
        ]
    )
    program, recorder = compiled.instantiate()
    program.init()
    for fields in layout.iter_tuples(handshake):
        out = program.step(*fields)
        print("segment %-28s -> state %s" % (fields, STATE_NAMES[out[1]]))

    # --- Iteration Difference Coverage: varied vs monotonous input ------
    program, recorder = compiled.instantiate()
    metric_handshake, _, _, _ = driver(program, recorder.curr, handshake, 0)
    program, recorder = compiled.instantiate()
    flat = layout.pack_stream([(0, 0, 0, 0, 0)] * 6)
    metric_flat, _, _, _ = driver(program, recorder.curr, flat, 0)
    print(
        "\nIteration Difference Coverage: handshake=%d, flat replay=%d"
        % (metric_handshake, metric_flat)
    )

    # --- let CFTCG find the protocol's states by itself -----------------
    print("\nfuzzing the protocol for 10s ...")
    result = Fuzzer(schedule, FuzzerConfig(max_seconds=10.0, seed=3)).run()
    print("coverage:", result.report)
    reached = {
        d.split("=")[-1]
        for d in result.report.missed_decisions
        if ":state=" in d
    }
    print(
        "states still unreached: %s"
        % (sorted(reached) if reached else "none — all visited")
    )


if __name__ == "__main__":
    main()
