#!/usr/bin/env python
"""The paper's running example: the SolarPV panel energy controller.

Reproduces the paper's §4 analysis on its Figure 1 model: generates the
fuzz driver (the paper's Figure 3), runs CFTCG and the two baselines
under the same budget, and prints the coverage comparison plus the
iteration-rate gap that makes code-based fuzzing win.

Run:  python examples/solar_pv.py [seconds-per-tool]
"""

import sys

from repro.bench import build_schedule
from repro.codegen import generate_fuzz_driver
from repro.experiments.runner import run_tool
from repro.experiments.speed import measure_iteration_rates


def main():
    budget = float(sys.argv[1]) if len(sys.argv) > 1 else 8.0
    schedule = build_schedule("SolarPV")

    print("=== generated fuzz driver (paper Fig. 3 analogue) ===")
    print(generate_fuzz_driver(schedule))

    print("=== iteration rates (paper: 26000 it/s vs 6 it/s) ===")
    rates = measure_iteration_rates("SolarPV", seconds=0.5)
    print(
        "compiled: %.0f it/s   interpreted: %.0f it/s   gap: %.0fx"
        % (
            rates["compiled_iters_per_sec"],
            rates["interpreted_iters_per_sec"],
            rates["speedup"],
        )
    )

    print("\n=== coverage after %.0fs per tool (paper Table 3 row) ===" % budget)
    print("%-10s %-10s %-10s %-10s" % ("tool", "decision", "condition", "mcdc"))
    for tool in ("sldv", "simcotest", "cftcg"):
        result = run_tool(tool, schedule, budget, seed=1)
        print(
            "%-10s %-10.1f %-10.1f %-10.1f  (%d test cases)"
            % (
                tool,
                result.report.decision,
                result.report.condition,
                result.report.mcdc,
                len(result.suite),
            )
        )
    print("\npaper reports: SLDV 78/83/57, SimCoTest 74/73/43, CFTCG 89/95/86")


if __name__ == "__main__":
    main()
