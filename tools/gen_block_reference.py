#!/usr/bin/env python
"""Generate docs/blocks.md — the block library reference — from the
registry's docstrings and structural metadata.

Run:  python tools/gen_block_reference.py
"""

import inspect
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.model.block import block_registry  # noqa: E402

HEADER = """# Block library reference

Auto-generated from the registry by ``tools/gen_block_reference.py``.
Every block implements both executable semantics (interpreter) and a code
template (generator); the test suite cross-validates them.

| column | meaning |
|---|---|
| in/out | default port counts (― = parameter-dependent) |
| state | keeps data across steps (has an update phase) |
| branches | contributes decisions/conditions to the BranchDB |
"""


def first_line(doc):
    if not doc:
        return ""
    return doc.strip().splitlines()[0].rstrip(".")


def declares_branches(cls):
    return "declare_branches" in cls.__dict__


def main():
    registry = block_registry()
    groups = {}
    for name, cls in sorted(registry.items()):
        module = cls.__module__.rsplit(".", 1)[-1]
        groups.setdefault(module, []).append((name, cls))

    lines = [HEADER]
    for module in sorted(groups):
        lines.append("\n## %s\n" % module)
        lines.append("| block | in | out | state | branches | summary |")
        lines.append("|---|---|---|---|---|---|")
        for name, cls in groups[module]:
            dynamic_in = "n_inputs" in cls.__dict__ or "validate_params" in cls.__dict__
            lines.append(
                "| `%s` | %s | %s | %s | %s | %s |"
                % (
                    name,
                    cls.n_in if not dynamic_in else "―",
                    cls.n_out,
                    "yes" if cls.has_state else "",
                    "yes" if declares_branches(cls) else "",
                    first_line(inspect.getdoc(cls)),
                )
            )
        for name, cls in groups[module]:
            doc = inspect.getdoc(cls) or ""
            if "Params:" in doc:
                lines.append("\n### `%s`\n" % name)
                lines.append("```")
                lines.append(doc)
                lines.append("```")

    out_path = os.path.join(
        os.path.dirname(__file__), "..", "docs", "blocks.md"
    )
    os.makedirs(os.path.dirname(out_path), exist_ok=True)
    with open(out_path, "w") as handle:
        handle.write("\n".join(lines) + "\n")
    print("wrote %s (%d blocks)" % (out_path, len(registry)))


if __name__ == "__main__":
    main()
