#!/usr/bin/env python
"""Dump generated model modules (raw and optimized) for inspection.

Writes, for each requested benchmark model, the unoptimized module, the
optimized module and the fuzz driver side by side, plus a one-line diff
summary (line counts and optimizer pass statistics) — the quickest way to
eyeball what the optimizer actually did to a model:

    PYTHONPATH=src python tools/dump_codegen.py --out /tmp/codegen RAC AFC
    PYTHONPATH=src python tools/dump_codegen.py --level code --all
"""

import argparse
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from repro.bench.registry import build_schedule, model_names  # noqa: E402
from repro.codegen import (  # noqa: E402
    generate_fuzz_driver,
    generate_model_code,
    optimize_source,
    step_arg_kinds,
)


def dump_one(name: str, level: str, out_dir: str) -> None:
    schedule = build_schedule(name)
    raw = generate_model_code(schedule, level)
    optimized, stats = optimize_source(raw, step_arg_kinds(schedule))
    driver = generate_fuzz_driver(schedule)
    for suffix, text in (
        ("%s.py" % level, raw),
        ("%s_opt.py" % level, optimized),
        ("driver.py", driver),
    ):
        path = os.path.join(out_dir, "%s_%s" % (name, suffix))
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
    print(
        "%-10s %4d -> %4d lines   %s"
        % (
            name,
            len(raw.splitlines()),
            len(optimized.splitlines()),
            ", ".join("%s=%d" % item for item in sorted(stats.items())),
        )
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("models", nargs="*", help="benchmark model names")
    parser.add_argument("--all", action="store_true", help="dump every benchmark")
    parser.add_argument("--level", choices=("model", "code", "none"), default="model")
    parser.add_argument("--out", default="codegen_dump", help="output directory")
    args = parser.parse_args(argv)

    names = model_names() if args.all or not args.models else args.models
    unknown = [n for n in names if n not in model_names()]
    if unknown:
        parser.error("unknown models: %s" % ", ".join(unknown))
    os.makedirs(args.out, exist_ok=True)
    for name in names:
        dump_one(name, args.level, args.out)
    print("written to %s/" % args.out)
    return 0


if __name__ == "__main__":
    sys.exit(main())
