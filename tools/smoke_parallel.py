#!/usr/bin/env python
"""Multiprocessing smoke test for the parallel campaign runner.

Catches the classic multi-worker regressions early — payload pickling,
spawn-versus-fork semantics, pool initializer failures — by running a
2-worker micro-campaign on one bench model under every start method the
platform offers, plus the workers=1 byte-identity check against the
classic engine.  Exits non-zero on any failure; designed for CI:

    PYTHONPATH=src python tools/smoke_parallel.py [model]
"""

import multiprocessing
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from repro.bench.registry import build_schedule  # noqa: E402
from repro.fuzzing import Fuzzer, FuzzerConfig, run_campaign  # noqa: E402
from repro.fuzzing.parallel import ParallelFuzzer  # noqa: E402

MODEL = sys.argv[1] if len(sys.argv) > 1 else "CPUTask"
MICRO = dict(max_seconds=60.0, max_inputs=200, seed=0, sync_rounds=2)


def check(label: str, ok: bool) -> bool:
    print("  %-42s %s" % (label, "ok" if ok else "FAIL"))
    return ok


def main() -> int:
    schedule = build_schedule(MODEL)
    print("parallel smoke on %s (%d probes)" % (MODEL, schedule.branch_db.n_probes))
    failures = 0

    single = Fuzzer(schedule, FuzzerConfig(**MICRO)).run()
    routed = run_campaign(schedule, FuzzerConfig(workers=1, **MICRO))
    failures += not check(
        "workers=1 byte-identical to classic engine",
        [c.data for c in routed.suite] == [c.data for c in single.suite],
    )

    for method in multiprocessing.get_all_start_methods():
        if method == "forkserver":
            continue  # fork + spawn span the semantics that matter
        config = FuzzerConfig(workers=2, **MICRO)
        result = ParallelFuzzer(schedule, config, start_method=method).run()
        failures += not check(
            "2-worker campaign via %r executes budget" % method,
            result.inputs_executed == MICRO["max_inputs"],
        )
        failures += not check(
            "2-worker campaign via %r keeps coverage" % method,
            result.report.decision >= single.report.decision - 1e-9
            or len(result.suite) >= 1,
        )

    print("smoke %s" % ("PASSED" if not failures else "FAILED (%d)" % failures))
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
