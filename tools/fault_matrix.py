#!/usr/bin/env python
"""Fault-injection matrix for the 2-worker campaign runner.

One row per ``REPRO_FAULTS`` failure mode (worker death, hung worker,
compile-cache corruption, trace-sink IO error) plus the in-process
watchdog row (an infinite-loop MATLAB-function model).  Every row runs a
bounded 2-worker campaign with the fault injected mid-run and checks the
recovery contract:

* the campaign **completes** (no crash, full input budget executed);
* the fault leaves an **audit trail** (telemetry events / artifacts);
* for worker faults, the merged suite digest is **byte-identical** to
  the fault-free golden run — recovery must not perturb discovery.

Designed for CI (one mode per matrix job, or all modes in one go):

    PYTHONPATH=src python tools/fault_matrix.py [--mode worker_death]
"""

import argparse
import hashlib
import os
import shutil
import sys
import tempfile

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from repro import ModelBuilder, compile_model, convert  # noqa: E402
from repro.bench.registry import build_schedule  # noqa: E402
from repro.faults.plan import fault_scope, parse_faults  # noqa: E402
from repro.fuzzing import FuzzerConfig  # noqa: E402
from repro.fuzzing.parallel import ParallelFuzzer  # noqa: E402
from repro.telemetry import Telemetry, read_trace  # noqa: E402

# input-bounded profiles: digests depend only on seeds and input caps,
# so the golden and the faulted run are comparable byte for byte
PROFILE_STD = dict(
    max_seconds=600.0, max_inputs=200, seed=7, workers=2, sync_rounds=3
)
# hang detection waits out the epoch deadline, so the slow_exec profile
# keeps epochs (and the grace window derived from them) short
PROFILE_FAST = dict(
    max_seconds=6.0,
    max_inputs=120,
    seed=7,
    workers=2,
    sync_rounds=2,
    worker_timeout=0.5,
)

MODES = ("worker_death", "slow_exec", "cache_corrupt", "trace_io_error", "watchdog")


def check(label: str, ok: bool) -> bool:
    print("  %-52s %s" % (label, "ok" if ok else "FAIL"))
    return ok


def suite_digest(suite) -> str:
    h = hashlib.sha256()
    for case in suite:
        h.update(len(case.data).to_bytes(4, "little"))
        h.update(case.data)
    return h.hexdigest()


def run_campaign_traced(schedule, profile, workdir, tag, **overrides):
    params = dict(profile)
    params.update(overrides)
    trace = os.path.join(workdir, "%s.jsonl" % tag)
    tel = Telemetry(trace_path=trace)
    result = ParallelFuzzer(schedule, FuzzerConfig(**params), telemetry=tel).run()
    tel.close()
    return result, list(read_trace(trace)), tel


def hang_schedule():
    """An infinite-loop-on-demand MATLAB-function model (u > 100 hangs)."""
    b = ModelBuilder("hang")
    u = b.inport("u", "int16")
    y = b.block(
        "MatlabFunction",
        "f",
        inputs=["u"],
        outputs=[("y", "int32")],
        body="acc = 0\nwhile u > 100\n  acc = acc + 1\nend\ny = acc + u",
        locals={"acc": ("int32", 0)},
    )(u)
    b.outport("y", y)
    return convert(b.build())


def events_of(events, ev, **fields):
    return [
        e
        for e in events
        if e["ev"] == ev and all(e.get(k) == v for k, v in fields.items())
    ]


def run_mode(mode: str, schedule, goldens, workdir) -> int:
    print("mode: %s" % mode)
    failures = 0

    if mode == "worker_death":
        golden = goldens("std", schedule, PROFILE_STD)
        with fault_scope(parse_faults("worker_death:worker=1:epoch=1")):
            result, events, _ = run_campaign_traced(
                schedule, PROFILE_STD, workdir, mode
            )
        failures += not check(
            "campaign completes full budget",
            result.inputs_executed == PROFILE_STD["max_inputs"],
        )
        failures += not check(
            "merged suite digest matches fault-free golden",
            suite_digest(result.suite) == golden,
        )
        failures += not check(
            "worker failure + respawn recorded in trace",
            bool(events_of(events, "fault", kind="worker_failure", worker=1))
            and bool(events_of(events, "worker_respawn", worker=1)),
        )

    elif mode == "slow_exec":
        golden = goldens("fast", schedule, PROFILE_FAST)
        with fault_scope(parse_faults("slow_exec:worker=0:epoch=0:seconds=60")):
            result, events, _ = run_campaign_traced(
                schedule, PROFILE_FAST, workdir, mode
            )
        failures += not check(
            "campaign completes full budget",
            result.inputs_executed == PROFILE_FAST["max_inputs"],
        )
        failures += not check(
            "merged suite digest matches fault-free golden",
            suite_digest(result.suite) == golden,
        )
        failures += not check(
            "hang detected and slot respawned",
            bool(events_of(events, "fault", kind="worker_failure", worker=0))
            and bool(events_of(events, "worker_respawn", worker=0)),
        )

    elif mode == "cache_corrupt":
        from repro.codegen import cache as cache_mod

        golden = goldens("std", schedule, PROFILE_STD)
        cache_dir = os.path.join(workdir, "codegen-cache")
        os.environ["REPRO_CACHE_DIR"] = cache_dir
        cache_mod._DEFAULT = None
        try:
            compile_model(schedule, "model")  # persist a disk entry
            store = cache_mod.default_cache()
            store.clear_memory()  # force the campaign onto the disk tier
            with fault_scope(parse_faults("cache_corrupt")):
                result, events, _ = run_campaign_traced(
                    schedule, PROFILE_STD, workdir, mode
                )
            failures += not check(
                "campaign completes full budget",
                result.inputs_executed == PROFILE_STD["max_inputs"],
            )
            failures += not check(
                "merged suite digest matches fault-free golden",
                suite_digest(result.suite) == golden,
            )
            failures += not check(
                "poisoned entry quarantined", store.quarantined >= 1
            )
            failures += not check(
                "quarantine dir holds the evidence",
                os.path.isdir(os.path.join(cache_dir, "quarantine"))
                and bool(os.listdir(os.path.join(cache_dir, "quarantine"))),
            )
        finally:
            del os.environ["REPRO_CACHE_DIR"]
            cache_mod._DEFAULT = None

    elif mode == "trace_io_error":
        golden = goldens("std", schedule, PROFILE_STD)
        with fault_scope(parse_faults("trace_io_error")):
            result, _events, tel = run_campaign_traced(
                schedule, PROFILE_STD, workdir, mode
            )
        failures += not check(
            "campaign completes full budget",
            result.inputs_executed == PROFILE_STD["max_inputs"],
        )
        failures += not check(
            "merged suite digest matches fault-free golden",
            suite_digest(result.suite) == golden,
        )
        failures += not check(
            "sink degraded to no-trace (io_errors counted)", tel.io_errors >= 1
        )

    elif mode == "watchdog":
        crash_dir = os.path.join(workdir, "crashes")
        result, events, _ = run_campaign_traced(
            hang_schedule(),
            PROFILE_STD,
            workdir,
            mode,
            max_exec_steps=200,
            crash_dir=crash_dir,
        )
        from repro.faults.crashes import CrashStore

        store = CrashStore.load(crash_dir)
        failures += not check(
            "campaign survives hung generated code",
            result.inputs_executed == PROFILE_STD["max_inputs"],
        )
        failures += not check("timeouts recorded", result.timeouts > 0)
        failures += not check(
            "timeout artifacts persisted and deduplicated",
            len(store) >= 1
            and all(a.kind == "timeout" for a in store.artifacts.values()),
        )

    else:  # pragma: no cover - guarded by argparse choices
        raise SystemExit("unknown mode %r" % mode)

    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--mode", choices=MODES, help="run one matrix row")
    parser.add_argument("--model", default="CPUTask")
    args = parser.parse_args()

    schedule = build_schedule(args.model)
    print(
        "fault matrix on %s (%d probes)"
        % (args.model, schedule.branch_db.n_probes)
    )
    golden_cache = {}

    def goldens(profile_tag, sched, profile):
        if profile_tag not in golden_cache:
            result, _, _ = run_campaign_traced(
                sched, profile, workdir, "golden-%s" % profile_tag
            )
            golden_cache[profile_tag] = suite_digest(result.suite)
        return golden_cache[profile_tag]

    failures = 0
    workdir = tempfile.mkdtemp(prefix="fault-matrix-")
    try:
        for mode in [args.mode] if args.mode else MODES:
            failures += run_mode(mode, schedule, goldens, workdir)
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    print("fault matrix %s" % ("PASSED" if not failures else "FAILED (%d)" % failures))
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
