#!/usr/bin/env python
"""End-to-end smoke test for the live observability stack — the CI side
of the ``trace-tools`` job.

Runs a short 2-worker campaign with the metrics server attached, and
while it could still be scraped (the server stays up until we close it):

1. ``GET /metrics`` must parse as Prometheus text exposition and carry
   the campaign gauges;
2. ``GET /status`` must be a JSON frame aggregating both workers with
   heartbeat ages;
3. ``GET /events`` must be a JSON array of schema-valid events;
4. every event in the campaign trace must validate against
   ``EVENT_TYPES`` (span and monotonic-clock fields included);
5. ``repro trace summary`` must render (span tree included) and
   ``repro trace diff`` must compare two seeded traces — their rendered
   outputs are written into ``--out DIR`` as the build artifact.

Exits non-zero on any failure:

    PYTHONPATH=src python tools/smoke_observability.py --out obs-artifacts
"""

import argparse
import json
import os
import sys
import urllib.request

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from repro.bench.registry import build_schedule  # noqa: E402
from repro.cli import main as cli_main  # noqa: E402
from repro.fuzzing import FuzzerConfig, run_campaign  # noqa: E402
from repro.telemetry import Telemetry, read_trace, validate_event  # noqa: E402
from repro.telemetry.metrics import parse_exposition  # noqa: E402
from repro.telemetry.server import MetricsServer  # noqa: E402
from repro.telemetry.spans import build_span_tree  # noqa: E402
from repro.telemetry.tools import (  # noqa: E402
    dump_json,
    render_diff,
    render_summary,
    trace_diff,
)

MODEL = "CPUTask"
MICRO = dict(max_seconds=60.0, max_inputs=400, sync_rounds=2)


def check(label: str, ok: bool) -> bool:
    print("  %-52s %s" % (label, "ok" if ok else "FAIL"))
    return ok


def _get(url: str) -> bytes:
    with urllib.request.urlopen(url, timeout=10) as resp:
        return resp.read()


def run_served_campaign(schedule, trace_path: str, seed: int, workers: int):
    """One campaign with the full stack; returns (result, scrapes)."""
    tel = Telemetry(enabled=True, trace_path=trace_path)
    server = MetricsServer(tel).start()
    try:
        config = FuzzerConfig(workers=workers, seed=seed, **MICRO)
        result = run_campaign(schedule, config, telemetry=tel)
        scrapes = {
            "metrics": _get(server.url + "/metrics").decode("utf-8"),
            "status": json.loads(_get(server.url + "/status")),
            "events": json.loads(_get(server.url + "/events?n=64")),
        }
    finally:
        server.close()
        tel.close()
    return result, scrapes


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="obs-artifacts")
    parser.add_argument("--model", default=MODEL)
    args = parser.parse_args()
    os.makedirs(args.out, exist_ok=True)

    schedule = build_schedule(args.model)
    print(
        "observability smoke on %s (%d probes)"
        % (args.model, schedule.branch_db.n_probes)
    )
    failures = 0

    trace_a = os.path.join(args.out, "campaign_a.jsonl")
    trace_b = os.path.join(args.out, "campaign_b.jsonl")
    result, scrapes = run_served_campaign(schedule, trace_a, seed=0, workers=2)
    run_served_campaign(schedule, trace_b, seed=9, workers=1)

    # 1. /metrics: Prometheus-parseable, campaign gauges present
    try:
        samples = parse_exposition(scrapes["metrics"])
        failures += not check("/metrics parses as text exposition", bool(samples))
        failures += not check(
            "/metrics carries campaign gauges",
            samples.get("repro_campaign_workers_live") == 2.0
            and "repro_campaign_union_covered" in samples,
        )
    except ValueError as exc:
        print("  /metrics parse FAILED: %s" % exc)
        failures += 1

    # 2. /status: one frame, both workers, heartbeat ages
    status = scrapes["status"]
    failures += not check(
        "/status aggregates both workers",
        set(status.get("workers_detail", {})) == {"0", "1"}
        and all(
            "heartbeat_age_s" in w for w in status["workers_detail"].values()
        ),
    )
    failures += not check(
        "/status reports campaign frame", status.get("phase") == "done"
    )

    # 3. /events: schema-valid JSON tail
    try:
        for event in scrapes["events"]:
            validate_event(event)
        failures += not check(
            "/events tail is schema-valid (%d events)" % len(scrapes["events"]),
            bool(scrapes["events"]),
        )
    except Exception as exc:  # noqa: BLE001 - report the exact event error
        print("  /events validation FAILED: %s" % exc)
        failures += 1

    # 4. the full trace validates, spans stitch into one tree, mt rides
    events = read_trace(trace_a)
    try:
        for event in events:
            validate_event(event)
        ok = True
    except Exception as exc:  # noqa: BLE001
        print("  trace validation FAILED: %s" % exc)
        ok = False
    failures += not check(
        "campaign trace is schema-valid (%d events)" % len(events), ok
    )
    failures += not check(
        "no trace lines were damaged", events.skipped == 0
    )
    failures += not check(
        "every event carries the monotonic clock",
        all("mt" in e for e in events),
    )
    roots = build_span_tree(events)
    failures += not check(
        "span tree has one campaign root",
        [r.name for r in roots] == ["campaign"],
    )
    failures += not check(
        "worker slices parent under the root",
        {c.worker for c in roots[0].children if c.name == "slice"} == {0, 1}
        if roots
        else False,
    )

    # 5. the trace toolkit renders both traces and their diff
    summary = render_summary(events)
    failures += not check("trace summary renders", "span tree:" in summary)
    diff = trace_diff(events, read_trace(trace_b))
    rendered_diff = render_diff(diff)
    failures += not check("trace diff renders", "throughput:" in rendered_diff)
    failures += not check(
        "trace diff CLI exits clean",
        cli_main(["trace", "diff", trace_a, trace_b]) == 0,
    )

    with open(os.path.join(args.out, "summary.txt"), "w") as fh:
        fh.write(summary + "\n")
    with open(os.path.join(args.out, "diff.txt"), "w") as fh:
        fh.write(rendered_diff + "\n")
    with open(os.path.join(args.out, "diff.json"), "w") as fh:
        fh.write(dump_json(diff) + "\n")
    with open(os.path.join(args.out, "metrics.txt"), "w") as fh:
        fh.write(scrapes["metrics"])
    with open(os.path.join(args.out, "status.json"), "w") as fh:
        fh.write(json.dumps(status, indent=2, sort_keys=True) + "\n")
    print("artifacts in %s" % args.out)

    if failures:
        print("FAILED: %d check(s)" % failures)
        return 1
    print("observability smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
